"""Stacked-round engine equivalence suite (DESIGN.md §14).

The stacked-round driver's contract is the batch engine's, one level
deeper: with ``stack_rounds=True`` the cohort's scheduling rounds are
scored (and their uniform-factor placements pre-run) against the shared
``(R, p)`` column matrices, yet every run must stay bit-identical to the
per-run oracle — reports, event logs, audit trails — for every cohort
composition, both objectives, both step modes, and every replan policy.
"Skipping is always correct" is the engine's safety rule: any member the
stacked pass cannot serve falls back to the per-run path, so the tests
here also pin the demotion and mixed-cohort behaviour.
"""

import pytest

from repro.core.heuristics.registry import available_heuristics, make_scheduler
from repro.sim.batch_engine import (
    BatchCampaignRunner,
    BatchRunSpec,
    CohortDivergence,
)
from repro.sim.events import EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.workload.scenarios import ScenarioGenerator


def _reference_run(spec, log=None):
    """The untouched per-run oracle for one spec."""
    platform = spec.scenario.build_platform(spec.trial)
    sim = MasterSimulator(
        platform,
        spec.scenario.app,
        make_scheduler(spec.heuristic, platform=platform),
        options=spec.options,
        rng=spec.scenario.scheduler_rng(spec.trial, spec.heuristic),
        log=log,
    )
    return sim.run(max_slots=spec.max_slots)


def _assert_reports_equal(got, ref, context=""):
    assert got.makespan == ref.makespan, context
    assert got.slots_simulated == ref.slots_simulated, context
    assert got.completed_iterations == ref.completed_iterations, context
    assert got.scheduler_rounds == ref.scheduler_rounds, context


def _run_stacked(specs):
    """Run specs through the stacked engine, collecting event logs."""
    logs = {}

    def log_factory(index, spec):
        logs[index] = EventLog()
        return logs[index]

    runner = BatchCampaignRunner(
        specs, log_factory=log_factory, stack_rounds=True
    )
    return runner, runner.run(), logs


def _assert_oracle_identical(specs, reports, logs):
    for index, (spec, got) in enumerate(zip(specs, reports)):
        ref_log = EventLog()
        ref = _reference_run(spec, log=ref_log)
        context = f"{spec.heuristic}/trial={spec.trial}"
        _assert_reports_equal(got, ref, context)
        assert logs[index].events == ref_log.events, context


class TestFullRegistry:
    def test_whole_registry_bit_identity(self):
        # Every registered heuristic — the stacked-capable families
        # (mct/emct/lw/ud and their * variants), the store-path-only
        # exact-UD ablations, and the random/passive tiers that never
        # stack — in one cohort, two trials each.
        scenario = ScenarioGenerator(11).scenario(8, 5, 2, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=trial, heuristic=name,
                         max_slots=50_000)
            for trial in (0, 1)
            for name in available_heuristics()
        ]
        runner, reports, logs = _run_stacked(specs)
        # The stacked pass must actually have served the capable members
        # (otherwise this suite silently degrades into the §11 tests).
        assert runner.rows_scored_stacked > 0
        _assert_oracle_identical(specs, reports, logs)

    def test_single_heuristic_cohort(self):
        # All members share one scheduler class: one stacked group of
        # R rows, the widest (R, p) kernel shape.
        scenario = ScenarioGenerator(12).scenario(10, 5, 3, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=trial, heuristic="emct*",
                         max_slots=50_000)
            for trial in range(6)
        ]
        runner, reports, logs = _run_stacked(specs)
        assert runner.rows_scored_stacked > 0
        assert runner.demotions == 0
        _assert_oracle_identical(specs, reports, logs)


class TestObjectivesModesPolicies:
    def test_deadline_objective(self):
        # Budget-limited runs: completed_iterations carries the Section
        # 3.4 objective; the stacked pass must not change where the
        # budget lands.
        scenario = ScenarioGenerator(3).scenario(5, 5, 1, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=trial, heuristic=name,
                         max_slots=600)
            for trial in (0, 1)
            for name in ("mct", "emct*", "lw", "ud")
        ]
        _runner, reports, logs = _run_stacked(specs)
        _assert_oracle_identical(specs, reports, logs)

    def test_slot_mode_members_demote_statically(self):
        # Slot-stepped members are statically ineligible for the cohort
        # (the per-run slot loop is the validated oracle); they must run
        # standalone and stay bit-identical alongside stacked members.
        scenario = ScenarioGenerator(5).scenario(6, 5, 2, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=0, heuristic="mct",
                         max_slots=50_000,
                         options=SimulatorOptions(step_mode="slot")),
            BatchRunSpec(scenario=scenario, trial=1, heuristic="ud*",
                         max_slots=50_000,
                         options=SimulatorOptions(replan_every_slot=True)),
        ]
        runner, reports, logs = _run_stacked(specs)
        assert runner.demotions == 2
        _assert_oracle_identical(specs, reports, logs)

    @pytest.mark.parametrize(
        "policy", ["event", "sticky", "debounce:4", "relevant-up"]
    )
    def test_replan_policies(self, policy):
        # Relaxed policies change when rounds trigger — fewer pauses,
        # different pause slots — but each triggered round must still be
        # served (or skipped) bit-identically.
        scenario = ScenarioGenerator(6).scenario(8, 5, 2, 0)
        options = SimulatorOptions(replan_policy=policy)
        specs = [
            BatchRunSpec(scenario=scenario, trial=trial, heuristic=name,
                         max_slots=50_000, options=options)
            for trial in (0, 1)
            for name in ("mct", "emct*", "lw*", "ud")
        ]
        _runner, reports, logs = _run_stacked(specs)
        _assert_oracle_identical(specs, reports, logs)


class TestDemotionAndMixedCohorts:
    def test_mid_cohort_divergence_finishes_standalone(self):
        # A stacked member whose shared seam diverges mid-run (here: a
        # states provider that starts raising) must demote, finish the
        # paused round on the per-run path, and still match the oracle —
        # without poisoning the other stacked members.
        scenario = ScenarioGenerator(4).scenario(5, 5, 2, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=0, heuristic="mct",
                         max_slots=50_000),
        ]
        runner = BatchCampaignRunner(specs, stack_rounds=True)
        admit = runner._admit

        def tripping_admit(index, spec, groups, donors):
            run = admit(index, spec, groups, donors)
            if spec.heuristic == "mct":
                # Stacked members run without a provider (their own
                # calendar); installing one drops the run to the sweep
                # body path, which is bit-identical, so the tripwire
                # gathers the rows itself until it starts raising.
                sources = run.sim._avail
                calls = {"n": 0}

                def tripwire(slot):
                    calls["n"] += 1
                    if calls["n"] > 5:
                        raise CohortDivergence("test divergence")
                    return [source.state_at(slot) for source in sources]

                run.sim.states_provider = tripwire
            return run

        runner._admit = tripping_admit
        reports = runner.run()
        assert runner.demotions == 1
        for spec, got in zip(specs, reports):
            _assert_reports_equal(got, _reference_run(spec), spec.heuristic)

    def test_mixed_cohort_with_audit_and_non_capable(self):
        # Stacked-capable, capable-but-not (random/passive score no CT
        # rows), and statically ineligible audit members in one runner;
        # the audit run's network trail lives in its event log, so the
        # log comparison covers the audit trail too.
        scenario = ScenarioGenerator(9).scenario(6, 5, 2, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=0, heuristic="random",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=0, heuristic="passive",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=1, heuristic="lw",
                         max_slots=50_000,
                         options=SimulatorOptions(audit=True)),
            BatchRunSpec(scenario=scenario, trial=1, heuristic="ud-exact",
                         max_slots=50_000),
        ]
        runner, reports, logs = _run_stacked(specs)
        assert runner.demotions == 1  # the audit spec
        assert runner.rows_scored_stacked > 0
        _assert_oracle_identical(specs, reports, logs)

    def test_stacked_off_is_unchanged_cohort_engine(self):
        # The flag default is off: the runner then takes the §11 cohort
        # path for every member and scores no stacked rows.
        scenario = ScenarioGenerator(2).scenario(5, 5, 1, 0)
        specs = [
            BatchRunSpec(scenario=scenario, trial=0, heuristic="emct*",
                         max_slots=50_000),
            BatchRunSpec(scenario=scenario, trial=1, heuristic="mct",
                         max_slots=50_000),
        ]
        runner = BatchCampaignRunner(specs)
        reports = runner.run()
        assert runner.rows_scored_stacked == 0
        for spec, got in zip(specs, reports):
            _assert_reports_equal(got, _reference_run(spec), spec.heuristic)
