"""Tests for the Section 7 scenario generator."""

import numpy as np
import pytest

from repro.workload.scenarios import (
    PAPER_N_VALUES,
    PAPER_NCOM_VALUES,
    PAPER_WMIN_VALUES,
    ScenarioGenerator,
)


class TestScenarioGeneration:
    def test_paper_parameter_constants(self):
        assert PAPER_N_VALUES == (5, 10, 20, 40)
        assert PAPER_NCOM_VALUES == (5, 10, 20)
        assert PAPER_WMIN_VALUES == tuple(range(1, 11))

    def test_scenario_shape(self):
        scenario = ScenarioGenerator(0).scenario(10, 5, 3, 0)
        assert scenario.p == 20
        assert len(scenario.speeds) == 20
        assert scenario.ncom == 5
        assert scenario.app.tasks_per_iteration == 10
        assert scenario.app.iterations == 10

    def test_timings_follow_wmin(self):
        scenario = ScenarioGenerator(0).scenario(10, 5, 3, 0)
        assert scenario.app.t_data == 3
        assert scenario.app.t_prog == 15

    def test_speeds_in_paper_range(self):
        for wmin in (1, 4, 10):
            scenario = ScenarioGenerator(0).scenario(5, 5, wmin, 0)
            assert all(wmin <= w <= 10 * wmin for w in scenario.speeds)

    def test_chains_in_paper_range(self):
        scenario = ScenarioGenerator(0).scenario(5, 5, 1, 0)
        for model in scenario.models:
            for loop in (model.p_uu, model.p_rr, model.p_dd):
                assert 0.90 <= loop <= 0.99

    def test_deterministic(self):
        a = ScenarioGenerator(7).scenario(10, 5, 2, 3)
        b = ScenarioGenerator(7).scenario(10, 5, 2, 3)
        assert a.speeds == b.speeds
        assert all(
            np.allclose(ma.matrix, mb.matrix)
            for ma, mb in zip(a.models, b.models)
        )

    def test_different_indices_differ(self):
        gen = ScenarioGenerator(7)
        a, b = gen.scenario(10, 5, 2, 0), gen.scenario(10, 5, 2, 1)
        assert a.speeds != b.speeds or not np.allclose(
            a.models[0].matrix, b.models[0].matrix
        )

    def test_contention_prone_parameters(self):
        scenarios = ScenarioGenerator(0).contention_prone(5, 3)
        assert len(scenarios) == 3
        for s in scenarios:
            assert s.app.tasks_per_iteration == 20
            assert s.ncom == 5
            assert s.app.t_data == 5
            assert s.app.t_prog == 25

    def test_grid_size(self):
        scenarios = list(
            ScenarioGenerator(0).grid(
                2, n_values=(5,), ncom_values=(5, 10), wmin_values=(1, 2)
            )
        )
        assert len(scenarios) == 2 * 2 * 2

    def test_invalid_parameters_rejected(self):
        gen = ScenarioGenerator(0)
        with pytest.raises(ValueError):
            gen.scenario(0, 5, 1, 0)
        with pytest.raises(ValueError):
            gen.scenario(5, 0, 1, 0)
        with pytest.raises(ValueError):
            gen.scenario(5, 5, 0, 0)


class TestTrialPairing:
    def test_same_trial_same_availability(self):
        # The cornerstone of the dfb metric: every heuristic must see the
        # same availability sample for a given (scenario, trial).
        scenario = ScenarioGenerator(11).scenario(5, 5, 2, 0)
        p1 = scenario.build_platform(trial=3)
        p2 = scenario.build_platform(trial=3)
        for q in range(scenario.p):
            t1 = [p1[q].availability.state_at(t) for t in range(500)]
            t2 = [p2[q].availability.state_at(t) for t in range(500)]
            assert t1 == t2

    def test_different_trials_differ(self):
        scenario = ScenarioGenerator(11).scenario(5, 5, 2, 0)
        p1 = scenario.build_platform(trial=0)
        p2 = scenario.build_platform(trial=1)
        t1 = [p1[0].availability.state_at(t) for t in range(500)]
        t2 = [p2[0].availability.state_at(t) for t in range(500)]
        assert t1 != t2

    def test_scheduler_rng_isolated_per_heuristic(self):
        scenario = ScenarioGenerator(11).scenario(5, 5, 2, 0)
        a = scenario.scheduler_rng(0, "random")
        b = scenario.scheduler_rng(0, "random1")
        assert not np.allclose(a.random(8), b.random(8))

    def test_scheduler_rng_reproducible(self):
        scenario = ScenarioGenerator(11).scenario(5, 5, 2, 0)
        a = scenario.scheduler_rng(0, "random")
        b = scenario.scheduler_rng(0, "random")
        assert np.allclose(a.random(8), b.random(8))

    def test_beliefs_match_generating_chains(self):
        scenario = ScenarioGenerator(11).scenario(5, 5, 2, 0)
        platform = scenario.build_platform(0)
        for q in range(scenario.p):
            assert platform[q].belief is scenario.models[q]
