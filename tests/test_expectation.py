"""Tests for Lemma 1, Theorem 2 and the P_UD forms — closed form vs Monte Carlo."""

import numpy as np
import pytest

from repro.core.expectation import (
    expected_completion_slots,
    expected_next_up,
    p_no_down_approx,
    p_no_down_exact,
    p_plus,
    simulate_completion_slots,
    simulate_p_no_down,
    simulate_p_plus,
    success_probability,
)
from repro.core.markov import MarkovAvailabilityModel, paper_random_model


def chain(p_uu=0.9, p_rr=0.85, p_dd=0.9):
    return MarkovAvailabilityModel.from_self_loops(p_uu, p_rr, p_dd)


class TestLemma1:
    def test_formula_value(self):
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.8, p_ur=0.15, p_ud=0.05,
            p_ru=0.3, p_rr=0.6, p_rd=0.1,
            p_du=0.5, p_dr=0.25, p_dd=0.25,
        )
        expected = 0.8 + 0.15 * 0.3 / (1 - 0.6)
        assert p_plus(model) == pytest.approx(expected)

    def test_no_reclaimed_excursion_when_never_returns(self):
        # RECLAIMED absorbing (p_rr = 1): only the direct u->u path counts.
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.7, p_ur=0.2, p_ud=0.1,
            p_ru=0.0, p_rr=1.0, p_rd=0.0,
            p_du=0.5, p_dr=0.0, p_dd=0.5,
        )
        assert p_plus(model) == pytest.approx(0.7)

    def test_is_probability(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            model = paper_random_model(rng)
            assert 0.0 <= p_plus(model) <= 1.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_monte_carlo(self, seed):
        rng = np.random.default_rng(seed)
        model = paper_random_model(rng)
        estimate = simulate_p_plus(model, np.random.default_rng(seed + 100), samples=20_000)
        assert estimate == pytest.approx(p_plus(model), abs=0.01)


class TestTheorem2:
    def test_w_equals_one_is_immediate(self):
        assert expected_completion_slots(chain(), 1) == pytest.approx(1.0)

    def test_reduces_to_w_when_never_reclaimed(self):
        # p_ur = 0: every successful walk is pure UP, E(W) = W.
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.9, p_ur=0.0, p_ud=0.1,
            p_ru=0.3, p_rr=0.6, p_rd=0.1,
            p_du=0.5, p_dr=0.25, p_dd=0.25,
        )
        for w in (1, 2, 5, 20):
            assert expected_completion_slots(model, w) == pytest.approx(float(w))

    def test_linear_in_w(self):
        model = chain()
        e_up = expected_next_up(model)
        for w in (2, 3, 10):
            assert expected_completion_slots(model, w) == pytest.approx(
                1 + (w - 1) * e_up
            )

    def test_closed_form_structure(self):
        model = chain(0.8, 0.7, 0.9)
        w = 6
        # Theorem 2 exactly as printed in the paper.
        num = model.p_ur * model.p_ru / (1 - model.p_rr)
        den = model.p_uu * (1 - model.p_rr) + model.p_ur * model.p_ru
        paper_value = w + (w - 1) * num / den
        assert expected_completion_slots(model, w) == pytest.approx(paper_value)

    def test_exceeds_w_when_reclaimed_possible(self):
        assert expected_completion_slots(chain(), 10) > 10

    @pytest.mark.parametrize("w", [2, 5, 12])
    def test_matches_monte_carlo(self, w):
        model = chain(0.85, 0.75, 0.9)
        p_success, mean_slots = simulate_completion_slots(
            model, w, np.random.default_rng(31), samples=30_000
        )
        assert p_success == pytest.approx(success_probability(model, w), abs=0.01)
        assert mean_slots == pytest.approx(
            expected_completion_slots(model, w), rel=0.02
        )

    def test_monotone_in_w(self):
        model = chain()
        values = [expected_completion_slots(model, w) for w in range(1, 30)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_zero_workload(self):
        with pytest.raises(ValueError):
            expected_completion_slots(chain(), 0)

    def test_absorbing_reclaimed_expected_up_is_one(self):
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.7, p_ur=0.2, p_ud=0.1,
            p_ru=0.0, p_rr=1.0, p_rd=0.0,
            p_du=0.5, p_dr=0.0, p_dd=0.5,
        )
        assert expected_next_up(model) == pytest.approx(1.0)

    def test_p_uu_zero_limit(self):
        # Successful continuations must pass through RECLAIMED.
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.0, p_ur=0.9, p_ud=0.1,
            p_ru=0.5, p_rr=0.4, p_rd=0.1,
            p_du=0.5, p_dr=0.25, p_dd=0.25,
        )
        assert expected_next_up(model) == pytest.approx(1 + 1 / (1 - 0.4))


class TestSuccessProbability:
    def test_w_one_certain(self):
        assert success_probability(chain(), 1) == pytest.approx(1.0)

    def test_is_p_plus_power(self):
        model = chain()
        assert success_probability(model, 5) == pytest.approx(p_plus(model) ** 4)

    def test_decreasing_in_w(self):
        model = chain()
        values = [success_probability(model, w) for w in range(1, 20)]
        assert all(b < a for a, b in zip(values, values[1:]))


class TestPUD:
    def test_exact_k1_is_certain(self):
        assert p_no_down_exact(chain(), 1) == pytest.approx(1.0)

    def test_exact_k2_is_one_minus_pud(self):
        model = chain()
        assert p_no_down_exact(model, 2) == pytest.approx(1.0 - model.p_ud)

    def test_exact_decreasing_in_k(self):
        model = chain()
        values = [p_no_down_exact(model, k) for k in range(1, 30)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("k", [2, 5, 15])
    def test_exact_matches_monte_carlo(self, k):
        model = chain(0.85, 0.8, 0.9)
        estimate = simulate_p_no_down(
            model, k, np.random.default_rng(17), samples=30_000
        )
        assert estimate == pytest.approx(p_no_down_exact(model, k), abs=0.01)

    def test_approx_exact_at_k2(self):
        # At k = 2 the paper's approximation has an empty tail product, so
        # both forms equal 1 - P_ud.
        rng = np.random.default_rng(3)
        for _ in range(20):
            model = paper_random_model(rng)
            assert p_no_down_approx(model, 2.0) == pytest.approx(
                p_no_down_exact(model, 2)
            )

    def test_approx_tracks_exact_for_paper_chains(self):
        # The rank-1 approximation degrades with k (it forgets the state
        # after one transition); on the paper's chain population it stays
        # within a few points at small k and remains a sane probability
        # with the same monotone trend at large k.
        rng = np.random.default_rng(3)
        for _ in range(20):
            model = paper_random_model(rng)
            assert p_no_down_approx(model, 5.0) == pytest.approx(
                p_no_down_exact(model, 5), abs=0.06
            )
            for k in (10, 25):
                approx = p_no_down_approx(model, float(k))
                exact = p_no_down_exact(model, k)
                assert 0.0 <= approx <= 1.0
                assert abs(approx - exact) < 0.2
            seq = [p_no_down_approx(model, float(k)) for k in range(2, 30)]
            assert all(b <= a for a, b in zip(seq, seq[1:]))

    def test_approx_accepts_fractional_k(self):
        model = chain()
        value = p_no_down_approx(model, 3.7)
        assert 0.0 < value < 1.0

    def test_approx_clamps_small_k(self):
        model = chain()
        assert p_no_down_approx(model, 1.0) == pytest.approx(1.0 - model.p_ud)
        assert p_no_down_approx(model, 2.0) == pytest.approx(1.0 - model.p_ud)

    def test_approx_rejects_k_below_one(self):
        with pytest.raises(ValueError):
            p_no_down_approx(chain(), 0.5)

    def test_exact_rejects_k_zero(self):
        with pytest.raises(ValueError):
            p_no_down_exact(chain(), 0)


class TestMonteCarloEstimators:
    def test_simulate_completion_reports_nan_without_successes(self):
        # A chain that crashes immediately after the first slot.
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.0, p_ur=0.0, p_ud=1.0,
            p_ru=0.0, p_rr=0.0, p_rd=1.0,
            p_du=0.0, p_dr=0.0, p_dd=1.0,
        )
        p_success, mean_slots = simulate_completion_slots(
            model, 5, np.random.default_rng(0), samples=100
        )
        assert p_success == 0.0
        assert np.isnan(mean_slots)

    def test_simulate_completion_w1(self):
        p_success, mean_slots = simulate_completion_slots(
            chain(), 1, np.random.default_rng(0), samples=50
        )
        assert p_success == 1.0
        assert mean_slots == pytest.approx(1.0)
