"""Tests for the extensions beyond the paper: proactive class, deadline
study, model-mismatch study."""

import numpy as np
import pytest

from repro.core.heuristics.mct import MctScheduler
from repro.experiments.deadline_study import (
    render_deadline_study,
    run_deadline_study,
)
from repro.experiments.mismatch_study import (
    fit_markov_belief,
    render_mismatch_study,
    run_mismatch_study,
)
from repro.sim.events import EventKind, EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.types import states_from_codes
from repro.workload.application import IterativeApplication


def trace_platform(codes_list, speeds, ncom=2):
    processors = [
        Processor.from_trace(q, speeds[q], states_from_codes(codes))
        for q, codes in enumerate(codes_list)
    ]
    return Platform(processors, ncom=ncom)


class TestProactive:
    def _stalled_setup(self):
        # P0 fast, UP just long enough to pin the task then RECLAIMED
        # forever; P1 slower but always UP.  Replication is disabled so the
        # only rescue is proactive termination.
        platform = trace_platform(["uu" + "r" * 60, "u" * 62], [1, 4], ncom=2)
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=1
        )
        return platform, app

    def test_without_proactive_stalls(self):
        platform, app = self._stalled_setup()
        sim = MasterSimulator(
            platform, app, MctScheduler(),
            options=SimulatorOptions(replication=False, proactive=False,
                                     audit=True),
        )
        assert sim.run(max_slots=62).makespan is None

    def test_proactive_rescues_the_iteration(self):
        platform, app = self._stalled_setup()
        log = EventLog()
        sim = MasterSimulator(
            platform, app, MctScheduler(),
            options=SimulatorOptions(replication=False, proactive=True,
                                     audit=True),
            log=log,
        )
        report = sim.run(max_slots=62)
        assert report.makespan is not None
        terminations = [
            e for e in log.of_kind(EventKind.INSTANCE_LOST)
            if e.detail == "proactive-termination"
        ]
        assert terminations

    def test_proactive_spares_nearly_done_tasks(self):
        # w=10 task with >50% compute done on a briefly reclaimed worker
        # must NOT be killed.
        platform = trace_platform(
            ["u" * 9 + "rr" + "u" * 30, "u" * 41], [10, 10], ncom=2
        )
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=1
        )
        log = EventLog()
        sim = MasterSimulator(
            platform, app, MctScheduler(),
            options=SimulatorOptions(replication=False, proactive=True,
                                     audit=True),
            log=log,
        )
        report = sim.run(max_slots=60)
        assert report.makespan is not None
        terminations = [
            e for e in log.of_kind(EventKind.INSTANCE_LOST)
            if e.detail == "proactive-termination"
        ]
        # Compute starts at slot 3 (prog 0, data 1); by the RECLAIMED
        # window (slots 9-10) it has 6-7 of 10 slots done -> spared.
        assert not terminations

    def test_proactive_never_fires_mid_iteration_glut(self):
        # More uncommitted tasks than UP processors: not the end-game
        # regime, so no terminations even with stalled workers.
        platform = trace_platform(["ur" + "u" * 30, "u" * 32], [2, 2], ncom=2)
        app = IterativeApplication(
            tasks_per_iteration=6, iterations=1, t_prog=1, t_data=1
        )
        log = EventLog()
        sim = MasterSimulator(
            platform, app, MctScheduler(),
            options=SimulatorOptions(replication=False, proactive=True,
                                     audit=True),
            log=log,
        )
        sim.run(max_slots=100)
        early = [
            e for e in log.of_kind(EventKind.INSTANCE_LOST)
            if e.detail == "proactive-termination" and e.slot <= 1
        ]
        assert not early


class TestDeadlineStudy:
    def test_runs_and_ranks(self):
        result = run_deadline_study(
            deadline_slots=500,
            heuristics=("emct*", "random"),
            scenario_count=2,
            trials=1,
        )
        rows = result.rows()
        assert len(rows) == 2
        assert all(mean >= 0 for _name, mean, _wins in rows)
        text = render_deadline_study(result)
        assert "Deadline objective" in text
        assert "500 slots" in text

    def test_instance_alignment(self):
        result = run_deadline_study(
            deadline_slots=300,
            heuristics=("mct", "random"),
            scenario_count=1,
            trials=2,
        )
        lengths = {
            len(v) for v in result.iterations_by_heuristic.values()
        }
        assert lengths == {result.instances}

    def test_proactive_flag_accepted(self):
        result = run_deadline_study(
            deadline_slots=300,
            heuristics=("mct",),
            scenario_count=1,
            trials=1,
            proactive=True,
        )
        assert result.instances == 1


class TestFitMarkovBelief:
    def test_recovers_transition_structure(self):
        from repro.core.markov import MarkovAvailabilityModel

        model = MarkovAvailabilityModel.from_self_loops(0.9, 0.8, 0.7)
        trace = model.sample_trace(200_000, np.random.default_rng(0), initial=0)
        fitted = fit_markov_belief(trace)
        assert np.allclose(fitted.matrix, model.matrix, atol=0.02)

    def test_smoothing_keeps_chain_recurrent(self):
        fitted = fit_markov_belief([0] * 100)  # only UP ever observed
        assert fitted.p_ud > 0
        assert fitted.stationary is not None

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            fit_markov_belief([0])


class TestMismatchStudy:
    def test_quick_study(self):
        result = run_mismatch_study(
            heuristics=("mct", "random"), p=4, trials=1,
        )
        assert set(result.accumulators) == {"markov", "weibull"}
        assert result.instances_per_kind == 1
        text = render_mismatch_study(result)
        assert "markov truth" in text
        assert "weibull truth" in text
