"""Tests for the bounded multi-port channel allocator."""

import pytest

from repro.sim.network import BoundedMultiportNetwork, TransferRequest


def req(worker, kind="data", started=False, is_replica=False):
    return TransferRequest(
        worker=worker, kind=kind, started=started, is_replica=is_replica, key=worker
    )


class TestTransferRequest:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            req(0, kind="video")

    def test_rejects_negative_worker(self):
        with pytest.raises(ValueError):
            req(-1)

    def test_priority_ordering(self):
        ongoing = req(5, started=True)
        fresh_prog = req(6, kind="prog")
        fresh_data = req(1)
        replica = req(0, is_replica=True)
        ranked = sorted([replica, fresh_data, fresh_prog, ongoing],
                        key=lambda r: r.priority)
        assert ranked[0] is ongoing          # started first
        assert ranked[1] is fresh_prog       # program before data
        assert ranked[2] is fresh_data       # original before replica
        assert ranked[3] is replica


class TestAllocation:
    def test_grants_all_within_budget(self):
        net = BoundedMultiportNetwork(4)
        granted = net.allocate(0, [req(0), req(1), req(2)])
        assert {g.worker for g in granted} == {0, 1, 2}

    def test_caps_at_ncom(self):
        net = BoundedMultiportNetwork(2)
        granted = net.allocate(0, [req(w) for w in range(5)])
        assert len(granted) == 2

    def test_unbounded_grants_everything(self):
        net = BoundedMultiportNetwork(None)
        granted = net.allocate(0, [req(w) for w in range(50)])
        assert len(granted) == 50

    def test_started_transfers_never_starved(self):
        net = BoundedMultiportNetwork(1)
        granted = net.allocate(
            0, [req(0, kind="prog"), req(9, started=True)]
        )
        assert granted[0].worker == 9

    def test_program_beats_new_data(self):
        net = BoundedMultiportNetwork(1)
        granted = net.allocate(0, [req(0, kind="data"), req(1, kind="prog")])
        assert granted[0].worker == 1

    def test_original_beats_replica(self):
        net = BoundedMultiportNetwork(1)
        granted = net.allocate(0, [req(0, is_replica=True), req(1)])
        assert granted[0].worker == 1

    def test_index_tie_break(self):
        net = BoundedMultiportNetwork(1)
        granted = net.allocate(0, [req(7), req(3)])
        assert granted[0].worker == 3

    def test_duplicate_worker_rejected(self):
        net = BoundedMultiportNetwork(2)
        with pytest.raises(ValueError, match="two transfer requests"):
            net.allocate(0, [req(1), req(1, kind="prog")])

    def test_empty_request_list(self):
        net = BoundedMultiportNetwork(2)
        assert net.allocate(0, []) == []


class TestAudit:
    def test_usage_recorded(self):
        net = BoundedMultiportNetwork(2)
        net.allocate(0, [req(0, kind="prog"), req(1)])
        net.allocate(1, [req(2)])
        usage = net.usage
        assert len(usage) == 2
        assert usage[0].nprog == 1 and usage[0].ndata == 1
        assert usage[1].nprog == 0 and usage[1].ndata == 1
        assert usage[0].requested == 2

    def test_verify_invariants_passes_normally(self):
        net = BoundedMultiportNetwork(2)
        for slot in range(10):
            net.allocate(slot, [req(0), req(1), req(2)])
        net.verify_invariants()

    def test_verify_invariants_detects_injected_violation(self):
        net = BoundedMultiportNetwork(1)
        net.allocate(0, [req(0)])
        # Inject a corrupted record, as a failure-injection check.
        from repro.sim.network import SlotUsage

        net._usage.append(SlotUsage(slot=1, nprog=1, ndata=1, requested=2))
        with pytest.raises(AssertionError, match="bandwidth constraint violated"):
            net.verify_invariants()

    def test_verify_unbounded_is_noop(self):
        net = BoundedMultiportNetwork(None)
        net.allocate(0, [req(w) for w in range(10)])
        net.verify_invariants()

    def test_audit_disabled_keeps_no_usage(self):
        net = BoundedMultiportNetwork(2, audit=False)
        net.allocate(0, [req(0)])
        assert net.usage == []

    def test_statistics(self):
        net = BoundedMultiportNetwork(2)
        net.allocate(0, [req(0), req(1)])
        net.allocate(1, [])
        net.allocate(2, [req(2)])
        assert net.busy_slot_count() == 2
        assert net.channel_slot_total() == 3
        assert net.mean_utilization() == pytest.approx(3 / 6)

    def test_mean_utilization_empty(self):
        assert BoundedMultiportNetwork(2).mean_utilization() == 0.0

    def test_rejects_nonpositive_ncom(self):
        with pytest.raises(ValueError):
            BoundedMultiportNetwork(0)
