"""Tests for the statistics and plotting helpers."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_plot, format_table
from repro.analysis.stats import bootstrap_ci, mean_and_sem, summarize


class TestStats:
    def test_mean_and_sem(self):
        mean, sem = mean_and_sem([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert sem == pytest.approx(1.0 / np.sqrt(3))

    def test_singleton_sem_zero(self):
        assert mean_and_sem([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_sem([])

    def test_bootstrap_ci_contains_mean_for_tight_sample(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 0.1, size=200)
        low, high = bootstrap_ci(sample, rng=np.random.default_rng(1))
        assert low < 10.0 < high
        assert high - low < 0.1

    def test_bootstrap_singleton(self):
        assert bootstrap_ci([4.0]) == (4.0, 4.0)

    def test_bootstrap_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_bootstrap_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert "n=4" in str(summary)

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestAsciiPlot:
    def test_contains_series_markers_and_legend(self):
        chart = ascii_plot(
            {"mct": [1, 2, 3], "emct": [3, 2, 1]},
            [1, 2, 3],
            title="demo",
        )
        assert "demo" in chart
        assert "legend:" in chart
        assert "o=mct" in chart
        assert "x=emct" in chart

    def test_axis_labels(self):
        chart = ascii_plot({"s": [0, 1]}, [0, 1], x_label="wmin",
                           y_label="dfb")
        assert "wmin" in chart
        assert "dfb" in chart

    def test_handles_nan_points(self):
        chart = ascii_plot({"s": [1.0, float("nan"), 3.0]}, [1, 2, 3])
        assert "legend:" in chart

    def test_flat_series(self):
        chart = ascii_plot({"s": [2.0, 2.0]}, [0, 1])
        assert "legend:" in chart

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            ascii_plot({}, [1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="points"):
            ascii_plot({"s": [1, 2]}, [1, 2, 3])

    def test_rejects_all_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            ascii_plot({"s": [float("nan")]}, [1])


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"],
            [("alpha", 1.5), ("b", 22.25)],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in table
        assert "22.25" in table

    def test_numeric_right_alignment(self):
        table = format_table(["h"], [(5,), (123,)])
        lines = table.splitlines()
        assert lines[-1].startswith("123")
        assert lines[-2].endswith("  5") or lines[-2].strip() == "5"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestBootstrapDeterminism:
    """Regression: CI bounds were fresh-entropy dependent (unseeded rng)."""

    def test_default_rng_is_deterministic(self):
        sample = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert bootstrap_ci(sample) == bootstrap_ci(sample)

    def test_default_matches_documented_seed(self):
        from repro.analysis.stats import DEFAULT_BOOTSTRAP_SEED

        sample = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        assert bootstrap_ci(sample) == bootstrap_ci(
            sample, rng=np.random.default_rng(DEFAULT_BOOTSTRAP_SEED)
        )

    def test_explicit_rng_still_controls_resampling(self):
        sample = list(range(30))
        a = bootstrap_ci(sample, rng=np.random.default_rng(1))
        b = bootstrap_ci(sample, rng=np.random.default_rng(1))
        c = bootstrap_ci(sample, rng=np.random.default_rng(2))
        assert a == b
        assert a != c  # different stream, (almost surely) different bounds
