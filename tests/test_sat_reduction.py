"""Tests for the executable Theorem 1 reduction."""

import numpy as np
import pytest

from repro.core.offline.sat_reduction import (
    PAPER_FIGURE1_FORMULA,
    Sat3Instance,
    assignment_from_schedule,
    brute_force_sat,
    reduction_instance,
    render_gadget,
    schedule_from_assignment,
    verify_schedule,
)
from repro.types import ProcState


def tiny_sat():
    # (x1 v x2) & (~x1 v x2): satisfiable by x2 = True.
    return Sat3Instance(n_vars=2, clauses=((1, 2), (-1, 2)))


def unsat_sat():
    # x1 & ~x1 via two unit clauses (x2 padding mentioned to satisfy the
    # every-variable-appears precondition).
    return Sat3Instance(n_vars=2, clauses=((1, 2), (-1, 2), (1, -2), (-1, -2),
                                           (1,), (-1,)))


class TestSat3Instance:
    def test_satisfied_by(self):
        sat = tiny_sat()
        assert sat.satisfied_by([False, True])
        assert sat.satisfied_by([True, True])
        assert not sat.satisfied_by([True, False])

    def test_rejects_empty_clauses(self):
        with pytest.raises(ValueError):
            Sat3Instance(n_vars=1, clauses=())

    def test_rejects_out_of_range_literal(self):
        with pytest.raises(ValueError, match="out of range"):
            Sat3Instance(n_vars=1, clauses=((2,),))

    def test_rejects_oversized_clause(self):
        with pytest.raises(ValueError, match="1..3 literals"):
            Sat3Instance(n_vars=4, clauses=((1, 2, 3, 4),))

    def test_rejects_unmentioned_variable(self):
        with pytest.raises(ValueError, match="every variable"):
            Sat3Instance(n_vars=3, clauses=((1, 2),))

    def test_wrong_assignment_length(self):
        with pytest.raises(ValueError):
            tiny_sat().satisfied_by([True])

    def test_paper_formula_is_satisfiable(self):
        assert brute_force_sat(PAPER_FIGURE1_FORMULA) is not None

    def test_brute_force_unsat(self):
        assert brute_force_sat(unsat_sat()) is None


class TestReductionInstance:
    def test_parameters_match_theorem(self):
        sat = PAPER_FIGURE1_FORMULA
        inst = reduction_instance(sat)
        n, m = sat.n_vars, sat.n_clauses
        assert inst.p == 2 * n
        assert inst.m == m
        assert inst.t_prog == m
        assert inst.t_data == 0
        assert inst.ncom == 1
        assert inst.speeds == tuple([1] * 2 * n)
        assert inst.horizon == m * (n + 1)

    def test_clause_window_matches_membership(self):
        sat = PAPER_FIGURE1_FORMULA
        inst = reduction_instance(sat)
        for j, clause in enumerate(sat.clauses):
            for i in range(1, sat.n_vars + 1):
                pos = inst.state(2 * (i - 1), j) == ProcState.UP
                neg = inst.state(2 * (i - 1) + 1, j) == ProcState.UP
                assert pos == (i in clause)
                assert neg == (-i in clause)

    def test_blocks_have_exactly_one_variable_pair_up(self):
        sat = tiny_sat()
        inst = reduction_instance(sat)
        m, n = sat.n_clauses, sat.n_vars
        for i in range(1, n + 1):
            for t in range(m * i, m * (i + 1)):
                ups = [q for q in range(inst.p)
                       if inst.state(q, t) == ProcState.UP]
                assert ups == [2 * (i - 1), 2 * (i - 1) + 1]


class TestCertificates:
    def test_every_satisfying_assignment_yields_valid_schedule(self):
        sat = tiny_sat()
        inst = reduction_instance(sat)
        for mask in range(4):
            assignment = [(mask >> i) & 1 == 1 for i in range(2)]
            if not sat.satisfied_by(assignment):
                continue
            schedule = schedule_from_assignment(sat, assignment)
            makespan = verify_schedule(inst, schedule)
            assert makespan is not None
            assert makespan <= inst.horizon

    def test_paper_formula_round_trip(self):
        sat = PAPER_FIGURE1_FORMULA
        assignment = brute_force_sat(sat)
        schedule = schedule_from_assignment(sat, assignment)
        recovered = assignment_from_schedule(sat, schedule)
        assert sat.satisfied_by(recovered)

    def test_unsatisfying_assignment_rejected(self):
        sat = tiny_sat()
        with pytest.raises(ValueError, match="does not satisfy"):
            schedule_from_assignment(sat, [True, False])

    def test_incomplete_schedule_rejected_by_backward_map(self):
        sat = tiny_sat()
        empty = [None] * reduction_instance(sat).horizon
        with pytest.raises(ValueError, match="does not complete"):
            assignment_from_schedule(sat, empty)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_satisfiable_formulas_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        while True:
            clauses = []
            for _ in range(4):
                variables = rng.choice(np.arange(1, n + 1), size=3, replace=False)
                signs = rng.choice([-1, 1], size=3)
                clauses.append(tuple(int(v * s) for v, s in zip(variables, signs)))
            try:
                sat = Sat3Instance(n_vars=n, clauses=tuple(clauses))
            except ValueError:
                continue  # some variable unmentioned; redraw
            if brute_force_sat(sat) is not None:
                break
        assignment = brute_force_sat(sat)
        schedule = schedule_from_assignment(sat, assignment)
        makespan = verify_schedule(reduction_instance(sat), schedule)
        assert makespan is not None
        recovered = assignment_from_schedule(sat, schedule)
        assert sat.satisfied_by(recovered)

    def test_unsat_formula_has_no_assignment_certificate(self):
        sat = unsat_sat()
        for mask in range(4):
            assignment = [(mask >> i) & 1 == 1 for i in range(2)]
            with pytest.raises(ValueError):
                schedule_from_assignment(sat, assignment)


class TestVerifySchedule:
    def test_rejects_service_to_non_up(self):
        sat = tiny_sat()
        inst = reduction_instance(sat)
        # Processor 0 (x1's positive literal) is RECLAIMED at clause 1
        # (clause (-1, 2) does not contain x1).
        schedule = [None] * inst.horizon
        schedule[1] = 0
        with pytest.raises(ValueError, match="not UP"):
            verify_schedule(inst, schedule)

    def test_rejects_over_service(self):
        sat = tiny_sat()
        inst = reduction_instance(sat)
        m = sat.n_clauses
        schedule = [None] * inst.horizon
        # Serve processor 2 (x2's positive literal, UP in both clauses)
        # beyond Tprog within its block.
        schedule[0] = 2
        schedule[1] = 2
        for t in range(2 * m, 3 * m):
            schedule[t] = 2  # block of variable 2
        with pytest.raises(ValueError, match="beyond Tprog"):
            verify_schedule(inst, schedule)

    def test_rejects_unknown_processor(self):
        sat = tiny_sat()
        inst = reduction_instance(sat)
        schedule = [99] + [None] * (inst.horizon - 1)
        with pytest.raises(ValueError, match="unknown processor"):
            verify_schedule(inst, schedule)

    def test_rejects_nonzero_t_data(self):
        sat = tiny_sat()
        inst = reduction_instance(sat)
        object.__setattr__(inst, "t_data", 1)
        with pytest.raises(ValueError, match="Tdata = 0"):
            verify_schedule(inst, [None] * inst.horizon)

    def test_rejects_overlong_schedule(self):
        sat = tiny_sat()
        inst = reduction_instance(sat)
        with pytest.raises(ValueError, match="longer than"):
            verify_schedule(inst, [None] * (inst.horizon + 1))


class TestGadgetRendering:
    def test_contains_all_literal_rows(self):
        text = render_gadget(PAPER_FIGURE1_FORMULA)
        for i in range(1, 5):
            assert f"x{i}" in text
            assert f"~x{i}" in text

    def test_clause_headers(self):
        text = render_gadget(PAPER_FIGURE1_FORMULA)
        for j in range(1, 7):
            assert f"C{j}" in text

    def test_marks_match_membership(self):
        # Row for x1 must have marks exactly at C2 and C4 (clauses
        # containing the positive literal x1 in the paper's formula).
        lines = render_gadget(PAPER_FIGURE1_FORMULA).splitlines()
        x1_row = next(line for line in lines if line.strip().startswith("x1"))
        marks = [idx for idx, cell in enumerate(x1_row.split()[1:]) if cell == "#"]
        assert marks == [1, 3]
