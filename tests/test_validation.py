"""Tests for the internal validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    require_in_range,
    require_nonnegative_int,
    require_positive,
    require_positive_int,
    require_probability,
)


class TestRequirePositiveInt:
    def test_accepts_python_int(self):
        assert require_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert require_positive_int(np.int64(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive_int(-1, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="must be an integer"):
            require_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive_int(True, "x")


class TestRequireNonnegativeInt:
    def test_accepts_zero(self):
        assert require_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            require_nonnegative_int(-3, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            require_nonnegative_int("1", "x")


class TestRequirePositive:
    def test_accepts_float(self):
        assert require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            require_positive(float("inf"), "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            require_positive(float("nan"), "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert require_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError, match="p must lie in"):
            require_probability(value, "p")


class TestRequireInRange:
    def test_accepts_bounds(self):
        assert require_in_range(2, "x", 2, 4) == 2.0
        assert require_in_range(4, "x", 2, 4) == 4.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            require_in_range(5, "x", 2, 4)
