"""Property-based tests (hypothesis) for the availability analytics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expectation import (
    expected_completion_slots,
    p_no_down_approx,
    p_no_down_exact,
    p_plus,
    success_probability,
)
from repro.core.markov import MarkovAvailabilityModel, stationary_distribution


@st.composite
def markov_models(draw, min_escape=0.01):
    """Random recurrent 3-state chains.

    Rows are drawn from a Dirichlet-like construction; every state keeps at
    least ``min_escape`` probability of leaving (so the chain stays
    recurrent and the closed forms are non-degenerate).
    """
    rows = []
    for i in range(3):
        raw = [draw(st.floats(0.01, 1.0)) for _ in range(3)]
        total = sum(raw)
        row = [value / total for value in raw]
        # Enforce escape mass from the diagonal.
        if row[i] > 1.0 - min_escape:
            excess = row[i] - (1.0 - min_escape)
            row[i] -= excess
            row[(i + 1) % 3] += excess
        rows.append(row)
    return MarkovAvailabilityModel(np.array(rows))


class TestStationaryProperties:
    @given(markov_models())
    @settings(max_examples=80, deadline=None)
    def test_stationary_is_fixed_point(self, model):
        pi = model.stationary
        assert np.allclose(pi @ model.matrix, pi, atol=1e-9)
        assert abs(pi.sum() - 1.0) < 1e-9
        assert np.all(pi >= -1e-12)

    @given(markov_models())
    @settings(max_examples=50, deadline=None)
    def test_rows_stochastic_after_normalisation(self, model):
        assert np.allclose(model.matrix.sum(axis=1), 1.0, atol=1e-12)

    @given(st.integers(2, 6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_general_stationary_solver(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.dirichlet(np.ones(n) * 2, size=n)
        pi = stationary_distribution(matrix)
        assert np.allclose(pi @ matrix, pi, atol=1e-8)


class TestClosedFormProperties:
    @given(markov_models())
    @settings(max_examples=80, deadline=None)
    def test_p_plus_is_probability(self, model):
        assert 0.0 <= p_plus(model) <= 1.0 + 1e-12

    @given(markov_models(), st.integers(1, 60))
    @settings(max_examples=80, deadline=None)
    def test_expectation_at_least_workload(self, model, w):
        assert expected_completion_slots(model, w) >= w - 1e-9

    @given(markov_models(), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_expectation_monotone_in_w(self, model, w):
        assert expected_completion_slots(model, w + 1) > expected_completion_slots(
            model, w
        ) - 1e-12

    @given(markov_models(), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_success_probability_in_unit_interval(self, model, w):
        value = success_probability(model, w)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(markov_models(), st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_p_no_down_exact_decreasing(self, model, k):
        assert (
            p_no_down_exact(model, k + 1) <= p_no_down_exact(model, k) + 1e-12
        )

    @given(markov_models(), st.floats(1.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_p_no_down_approx_in_unit_interval(self, model, k):
        value = p_no_down_approx(model, k)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(markov_models())
    @settings(max_examples=40, deadline=None)
    def test_exact_and_approx_agree_at_k2(self, model):
        assert abs(p_no_down_exact(model, 2) - p_no_down_approx(model, 2.0)) < 1e-9


class TestSamplingProperties:
    @given(markov_models(), st.integers(1, 300), st.integers(0, 2),
           st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_traces_only_contain_valid_states(self, model, length, initial, seed):
        trace = model.sample_trace(length, np.random.default_rng(seed), initial)
        assert trace.shape == (length,)
        assert trace[0] == initial
        assert set(np.unique(trace)) <= {0, 1, 2}

    @given(markov_models(), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_forbidden_transitions_never_sampled(self, model, seed):
        # Zero out one transition and verify it never occurs in a trace.
        matrix = model.matrix.copy()
        moved = matrix[0, 1]
        matrix[0, 1] = 0.0
        matrix[0, 0] += moved
        constrained = MarkovAvailabilityModel(matrix)
        trace = constrained.sample_trace(
            2000, np.random.default_rng(seed), initial=0
        )
        pairs = set(zip(trace[:-1], trace[1:]))
        assert (0, 1) not in pairs
