"""Cross-validation: simulator vs offline walker vs exact solver.

Three independently implemented components encode the same model
semantics (DESIGN.md §3):

* the online simulator's worker pipeline (:mod:`repro.sim.master`),
* the offline per-processor pipeline walker
  (:func:`repro.core.offline.mct.pipeline_completion_slot`),
* the exhaustive offline solver (:mod:`repro.core.offline.exact`).

These tests force them to agree on randomly generated instances — a far
stronger fidelity check than any single-component unit test, because a
semantic divergence (slot ordering, prefetch rule, RECLAIMED handling)
would make them drift apart.
"""

import numpy as np
import pytest

from repro.core.heuristics.mct import MctScheduler
from repro.core.heuristics.registry import make_scheduler
from repro.core.offline.exact import exact_offline_makespan
from repro.core.offline.instance import OfflineInstance
from repro.core.offline.mct import pipeline_completion_slot
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.workload.application import IterativeApplication


def random_codes(rng, length, alphabet="uuur"):
    return "".join(rng.choice(list(alphabet), size=length))


class TestSimulatorMatchesOfflineWalker:
    """Single processor, one iteration: sim makespan == walker prediction."""

    @pytest.mark.parametrize("alphabet", ["uuuur", "uuuurd"])
    @pytest.mark.parametrize("seed", range(25))
    def test_single_processor_equivalence(self, seed, alphabet):
        rng = np.random.default_rng(seed)
        t_prog = int(rng.integers(0, 4))
        t_data = int(rng.integers(0, 3))
        w = int(rng.integers(1, 4))
        m = int(rng.integers(1, 5))
        codes = random_codes(rng, 120, alphabet)

        instance = OfflineInstance.from_codes(
            [codes], t_prog=t_prog, t_data=t_data, speeds=w, ncom=1, m=m
        )
        predicted = pipeline_completion_slot(instance, 0, m, max_slots=120)

        platform = Platform(
            [Processor.from_trace(0, w, instance.traces[0])], ncom=1
        )
        app = IterativeApplication(
            tasks_per_iteration=m, iterations=1, t_prog=t_prog, t_data=t_data
        )
        sim = MasterSimulator(
            platform, app, MctScheduler(),
            options=SimulatorOptions(replication=False, audit=True),
        )
        report = sim.run(max_slots=120)

        if predicted is None:
            assert report.makespan is None
        else:
            assert report.makespan == predicted + 1  # slot index -> count

    @pytest.mark.parametrize("seed", range(10))
    def test_single_processor_with_down_states(self, seed):
        # With DOWN states the walker does not model program loss, so only
        # the no-crash prefix is comparable; instead we check the simulator
        # against the exact solver, which does model crashes.
        rng = np.random.default_rng(100 + seed)
        t_prog = int(rng.integers(0, 3))
        t_data = int(rng.integers(0, 2))
        w = int(rng.integers(1, 3))
        m = int(rng.integers(1, 3))
        codes = random_codes(rng, 40, "uuurd")

        instance = OfflineInstance.from_codes(
            [codes], t_prog=t_prog, t_data=t_data, speeds=w, ncom=1, m=m
        )
        optimal = exact_offline_makespan(instance).makespan

        platform = Platform(
            [Processor.from_trace(0, w, instance.traces[0])], ncom=1
        )
        app = IterativeApplication(
            tasks_per_iteration=m, iterations=1, t_prog=t_prog, t_data=t_data
        )
        sim = MasterSimulator(
            platform, app, MctScheduler(),
            options=SimulatorOptions(replication=False, audit=True),
        )
        report = sim.run(max_slots=40)

        if report.makespan is not None:
            assert optimal is not None
            # A single processor leaves no scheduling choices beyond
            # timing, so the online execution IS the optimal schedule.
            assert report.makespan == optimal
        else:
            # If the greedy online run cannot finish, neither can any
            # schedule (single processor, work-conserving service).
            assert optimal is None


class TestExactLowerBoundsOnline:
    """The exact optimum never exceeds any online heuristic's makespan."""

    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("heuristic", ["mct", "random"])
    def test_two_processor_instances(self, seed, heuristic):
        rng = np.random.default_rng(1000 + seed)
        t_prog = int(rng.integers(1, 3))
        t_data = int(rng.integers(0, 2))
        w = int(rng.integers(1, 3))
        m = 2
        rows = [random_codes(rng, 30, "uuur") for _ in range(2)]

        instance = OfflineInstance.from_codes(
            rows, t_prog=t_prog, t_data=t_data, speeds=w, ncom=1, m=m
        )
        optimal = exact_offline_makespan(instance).makespan

        platform = Platform(
            [
                Processor.from_trace(q, w, instance.traces[q])
                for q in range(2)
            ],
            ncom=1,
        )
        app = IterativeApplication(
            tasks_per_iteration=m, iterations=1, t_prog=t_prog, t_data=t_data
        )
        sim = MasterSimulator(
            platform,
            app,
            make_scheduler(heuristic),
            options=SimulatorOptions(replication=False, audit=True),
            rng=np.random.default_rng(seed),
        )
        report = sim.run(max_slots=30)

        if report.makespan is not None:
            assert optimal is not None
            assert optimal <= report.makespan

    @pytest.mark.parametrize("seed", range(8))
    def test_replication_respects_exact_bound_too(self, seed):
        rng = np.random.default_rng(2000 + seed)
        rows = [random_codes(rng, 24, "uur") for _ in range(2)]
        instance = OfflineInstance.from_codes(
            rows, t_prog=1, t_data=1, speeds=1, ncom=1, m=2
        )
        optimal = exact_offline_makespan(instance).makespan
        platform = Platform(
            [Processor.from_trace(q, 1, instance.traces[q]) for q in range(2)],
            ncom=1,
        )
        app = IterativeApplication(
            tasks_per_iteration=2, iterations=1, t_prog=1, t_data=1
        )
        sim = MasterSimulator(
            platform, app, MctScheduler(),
            options=SimulatorOptions(replication=True, audit=True),
        )
        report = sim.run(max_slots=24)
        if report.makespan is not None:
            assert optimal is not None
            assert optimal <= report.makespan
