"""Tests for the clairvoyant (true-availability) baseline."""

import numpy as np
import pytest

from repro.core.heuristics.mct import MctScheduler
from repro.core.heuristics.oracle import ClairvoyantScheduler
from repro.core.heuristics.registry import make_scheduler
from repro.experiments.harness import run_instance
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.types import states_from_codes
from repro.workload.application import IterativeApplication
from repro.workload.scenarios import ScenarioGenerator


def trace_platform(codes_list, speeds, ncom=2):
    processors = [
        Processor.from_trace(q, speeds[q], states_from_codes(codes))
        for q, codes in enumerate(codes_list)
    ]
    return Platform(processors, ncom=ncom)


class TestClairvoyantScheduler:
    def test_registry_requires_platform(self):
        with pytest.raises(ValueError, match="needs the simulation platform"):
            make_scheduler("clairvoyant")

    def test_registry_with_platform(self):
        platform = trace_platform(["u" * 10], [1])
        scheduler = make_scheduler("clairvoyant", platform=platform)
        assert scheduler.name == "clairvoyant"

    def test_avoids_soon_reclaimed_processor(self):
        # P0 and P1 identical to MCT's estimate (both UP now, same speed),
        # but the truth is P0 gets reclaimed before it could compute.
        platform = trace_platform(
            ["uu" + "r" * 30, "u" * 32], [1, 1], ncom=2
        )
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=1
        )
        # Plain MCT ties -> picks P0 (lower index) and stalls.
        mct_sim = MasterSimulator(
            trace_platform(["uu" + "r" * 30, "u" * 32], [1, 1], ncom=2),
            app, MctScheduler(),
            options=SimulatorOptions(replication=False, audit=True),
        )
        assert mct_sim.run(max_slots=32).makespan is None
        # Clairvoyance sees the preemption and picks P1.
        oracle_sim = MasterSimulator(
            platform, app, ClairvoyantScheduler(platform),
            options=SimulatorOptions(replication=False, audit=True),
        )
        report = oracle_sim.run(max_slots=32)
        assert report.makespan == 3  # P1: prog 0, data 1, compute 2

    def test_true_completion_walk_matches_simulator(self):
        # Single always-UP worker: the walk must predict the simulator's
        # makespan exactly (no contention, no competition).
        platform = trace_platform(["u" * 60], [3], ncom=1)
        app = IterativeApplication(
            tasks_per_iteration=2, iterations=1, t_prog=2, t_data=1
        )
        scheduler = ClairvoyantScheduler(platform)
        sim = MasterSimulator(
            platform, app, scheduler,
            options=SimulatorOptions(replication=False, audit=True),
        )
        report = sim.run(max_slots=60)
        # Pipeline: prog 0-1, data 2, comp 3-5, data2 3 (overlap), comp2 6-8.
        assert report.makespan == 9

    def test_horizon_validation(self):
        platform = trace_platform(["u"], [1])
        with pytest.raises(ValueError):
            ClairvoyantScheduler(platform, horizon=0)

    def test_harness_integration(self):
        scenario = ScenarioGenerator(4).scenario(5, 5, 2, 0)
        makespan = run_instance(scenario, 0, "clairvoyant", max_slots=100_000)
        assert makespan > 0

    def test_oracle_not_worse_than_mct_on_average(self):
        # Averaged over several scenarios, true information should help.
        gen = ScenarioGenerator(8)
        oracle_total, mct_total = 0.0, 0.0
        for index in range(4):
            scenario = gen.scenario(10, 5, 5, index)
            oracle_total += run_instance(scenario, 0, "clairvoyant")
            mct_total += run_instance(scenario, 0, "mct")
        assert oracle_total <= mct_total * 1.05
