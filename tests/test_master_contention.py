"""Master-simulator tests focused on the bounded multi-port constraint.

These exercise the channel-allocation policy end to end: serialised
program distribution, ongoing-transfer protection, program-over-data
priority and original-over-replica priority, all observed through event
logs and timelines rather than by poking at internals.
"""

import numpy as np

from repro.core.heuristics.mct import MctScheduler
from repro.sim.events import EventKind, EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.sim.timeline import TimelineRecorder
from repro.types import states_from_codes
from repro.workload.application import IterativeApplication


def build(codes_list, speeds, ncom, app, *, timeline=False, log=None):
    platform = Platform(
        [
            Processor.from_trace(q, speeds[q], states_from_codes(codes))
            for q, codes in enumerate(codes_list)
        ],
        ncom=ncom,
    )
    recorder = TimelineRecorder(len(platform)) if timeline else None
    sim = MasterSimulator(
        platform, app, MctScheduler(),
        options=SimulatorOptions(replication=False, audit=True),
        rng=np.random.default_rng(0),
        log=log,
        timeline=recorder,
    )
    return sim, recorder


class TestChannelSerialisation:
    def test_ncom_one_serialises_program_distribution(self):
        # Three identical workers, three tasks, Tprog=2, ncom=1: the
        # timeline must never show two transfers in the same slot.
        app = IterativeApplication(
            tasks_per_iteration=3, iterations=1, t_prog=2, t_data=1
        )
        sim, recorder = build(
            ["u" * 40] * 3, [3, 3, 3], 1, app, timeline=True
        )
        report = sim.run(max_slots=40)
        assert report.makespan is not None
        matrix = recorder.matrix()
        for row in matrix:
            transfers = sum(1 for c in row if chr(c) in "p=")
            assert transfers <= 1

    def test_ncom_two_allows_pairs(self):
        app = IterativeApplication(
            tasks_per_iteration=3, iterations=1, t_prog=2, t_data=1
        )
        sim, recorder = build(
            ["u" * 40] * 3, [3, 3, 3], 2, app, timeline=True
        )
        sim.run(max_slots=40)
        matrix = recorder.matrix()
        per_slot = [sum(1 for c in row if chr(c) in "p=") for row in matrix]
        assert max(per_slot) == 2
        assert all(count <= 2 for count in per_slot)

    def test_larger_ncom_reduces_makespan(self):
        app = IterativeApplication(
            tasks_per_iteration=4, iterations=1, t_prog=4, t_data=2
        )
        makespans = {}
        for ncom in (1, 2, 4):
            sim, _ = build(["u" * 100] * 4, [2] * 4, ncom, app)
            makespans[ncom] = sim.run(max_slots=100).makespan
        assert makespans[4] <= makespans[2] <= makespans[1]
        assert makespans[4] < makespans[1]

    def test_network_audit_confirms_budget(self):
        app = IterativeApplication(
            tasks_per_iteration=6, iterations=2, t_prog=3, t_data=2
        )
        sim, _ = build(["u" * 200] * 4, [2] * 4, 2, app)
        sim.run(max_slots=200)
        sim.network.verify_invariants()
        assert all(u.total <= 2 for u in sim.network.usage)


class TestOngoingTransferProtection:
    def test_started_program_not_preempted_by_new_requests(self):
        # P0 starts its program at slot 0 with Tprog=4 and ncom=1.  P1
        # becomes UP at slot 1 and also wants the program; P0's ongoing
        # transfer must keep the channel until it completes.
        app = IterativeApplication(
            tasks_per_iteration=2, iterations=1, t_prog=4, t_data=0
        )
        log = EventLog()
        sim, _ = build(
            ["u" * 30, "r" + "u" * 29], [1, 1], 1, app, log=log
        )
        sim.run(max_slots=30)
        prog_done = log.of_kind(EventKind.PROGRAM_TRANSFER_DONE)
        by_worker = {e.worker: e.slot for e in prog_done}
        assert by_worker[0] == 3           # uninterrupted slots 0-3
        assert by_worker.get(1, 99) >= 7   # starts only after P0 finished


class TestIterationBoundaryUnderContention:
    def test_data_for_next_iteration_not_prefetched(self):
        # One worker, m=1, 2 iterations: the data transfer of iteration 2
        # must start only after iteration 1 committed (no cross-iteration
        # prefetch).
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=2, t_prog=1, t_data=2
        )
        log = EventLog()
        sim, _ = build(["u" * 40], [3], 1, app, log=log)
        report = sim.run(max_slots=40)
        assert report.completed_iterations == 2
        starts = log.of_kind(EventKind.DATA_TRANSFER_START)
        it_done = log.of_kind(EventKind.ITERATION_DONE)
        second_start = [e for e in starts if e.iteration == 1][0]
        first_done = [e for e in it_done if e.iteration == 0][0]
        assert second_start.slot > first_done.slot

    def test_program_not_resent_between_iterations(self):
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=3, t_prog=5, t_data=1
        )
        log = EventLog()
        sim, _ = build(["u" * 60], [2], 1, app, log=log)
        report = sim.run(max_slots=60)
        assert report.completed_iterations == 3
        assert len(log.of_kind(EventKind.PROGRAM_TRANSFER_DONE)) == 1
