"""Smoke tests: the example scripts must run end to end.

Each example is executed as a subprocess (the way a user would run it);
the slower campaign examples are exercised at their smallest scale.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "desktop_grid_campaign.py",
        "trace_replay.py",
        "offline_complexity_tour.py",
        "contention_study.py",
        "deadline_and_proactive.py",
        "large_grid.py",
        "distributed_campaign.py",
    } <= names


def test_quickstart():
    out = run_example("quickstart.py", "7")
    assert "heuristic comparison" in out
    assert "emct*" in out
    assert "dfb" in out


def test_offline_complexity_tour():
    out = run_example("offline_complexity_tour.py")
    assert "Theorem 1" in out
    assert "10/10" in out            # Proposition 2 cross-validation
    assert "exact optimal makespan:  9" in out


def test_large_grid():
    # The example defaults to p=10,000; the smoke run scales down to
    # keep tier-1 fast while still crossing the vectorisation threshold.
    out = run_example("large_grid.py", "1500")
    assert "1500-worker volatile grid" in out
    assert "slot " in out                 # the progress line fired
    assert "makespan:" in out
    assert "workers touched per boundary" in out


@pytest.mark.slow
def test_desktop_grid_campaign():
    out = run_example("desktop_grid_campaign.py", "1", timeout=1200)
    assert "mini Table 2" in out
    assert "legend:" in out


@pytest.mark.slow
def test_distributed_campaign():
    out = run_example("distributed_campaign.py", "1", timeout=1200)
    assert "coordinator died" in out
    assert "state: finished" in out
    assert "statistics bit-identical to the serial run: YES" in out


@pytest.mark.slow
def test_trace_replay():
    out = run_example("trace_replay.py", timeout=1200)
    assert "markov ground truth" in out
    assert "weibull ground truth" in out


@pytest.mark.slow
def test_contention_study():
    out = run_example("contention_study.py", "1", timeout=1800)
    assert "communication ×10" in out


@pytest.mark.slow
def test_deadline_and_proactive():
    out = run_example("deadline_and_proactive.py", timeout=1800)
    assert "Deadline objective" in out
    assert "proactive" in out
