"""Tests for the timeline recorder and Gantt renderer."""

import numpy as np
import pytest

from repro.analysis.gantt import render_gantt
from repro.core.heuristics.mct import MctScheduler
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.sim.timeline import Activity, TimelineRecorder
from repro.types import states_from_codes
from repro.workload.application import IterativeApplication


def run_with_timeline(codes_list, speeds, app, ncom=1):
    platform = Platform(
        [
            Processor.from_trace(q, speeds[q], states_from_codes(codes))
            for q, codes in enumerate(codes_list)
        ],
        ncom=ncom,
    )
    timeline = TimelineRecorder(len(platform))
    sim = MasterSimulator(
        platform, app, MctScheduler(),
        options=SimulatorOptions(replication=False, audit=True),
        timeline=timeline,
    )
    report = sim.run(max_slots=200)
    return report, timeline


class TestRecorder:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            TimelineRecorder(0)

    def test_single_worker_pipeline_pattern(self):
        # prog 2 slots, data 1, compute 2 -> "pp=.##" with the idle slot
        # between data completion and compute start... actually data ends
        # slot 2, compute occupies slots 3-4: "pp=##".
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=2, t_data=1
        )
        report, timeline = run_with_timeline(["u" * 20], [2], app)
        assert report.makespan == 5
        assert timeline.worker_row(0) == "pp=##"

    def test_reclaimed_slot_marked(self):
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=0
        )
        report, timeline = run_with_timeline(["urru" + "u" * 10], [1], app)
        assert report.makespan == 4
        assert timeline.worker_row(0) == "prr#"

    def test_down_slot_marked(self):
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=0
        )
        report, timeline = run_with_timeline(["udu" + "u" * 10], [1], app)
        # prog slot 0, DOWN slot 1 wipes it, prog again slot 2, compute 3.
        assert report.makespan == 4
        assert timeline.worker_row(0) == "pXp#"

    def test_compute_takes_precedence_over_prefetch(self):
        # Two tasks, data overlaps compute: the overlap slot shows '#'.
        app = IterativeApplication(
            tasks_per_iteration=2, iterations=1, t_prog=1, t_data=1
        )
        report, timeline = run_with_timeline(["u" * 20], [2], app)
        row = timeline.worker_row(0)
        assert row.startswith("p=#")
        assert Activity.COMPUTE == ord("#")
        assert row.count("#") == 4  # 2 tasks × w=2

    def test_busy_fraction(self):
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=0
        )
        _report, timeline = run_with_timeline(["urru" + "u" * 10], [1], app)
        assert timeline.busy_fraction(0) == pytest.approx(2 / 4)

    def test_matrix_shape(self):
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=0
        )
        _report, timeline = run_with_timeline(
            ["u" * 10, "u" * 10], [1, 1], app, ncom=2
        )
        matrix = timeline.matrix()
        assert matrix.shape[1] == 2
        assert matrix.shape[0] == timeline.slots_recorded

    def test_worker_row_out_of_range(self):
        timeline = TimelineRecorder(2)
        timeline.begin_slot(np.zeros(2, dtype=np.uint8))
        with pytest.raises(IndexError):
            timeline.worker_row(5)

    def test_mark_before_begin_rejected(self):
        timeline = TimelineRecorder(1)
        with pytest.raises(RuntimeError):
            timeline.mark_compute(0)


class TestGantt:
    def _timeline(self):
        app = IterativeApplication(
            tasks_per_iteration=2, iterations=1, t_prog=2, t_data=1
        )
        _report, timeline = run_with_timeline(
            ["u" * 30, "uurr" + "u" * 26], [2, 2], app, ncom=1
        )
        return timeline

    def test_contains_rows_and_legend(self):
        chart = render_gantt(self._timeline())
        assert "P0" in chart and "P1" in chart
        assert "legend:" in chart

    def test_window(self):
        timeline = self._timeline()
        chart = render_gantt(timeline, start=0, width=3, show_legend=False)
        data_lines = [l for l in chart.splitlines() if l.startswith("P")]
        assert all(len(line.split(None, 1)[1]) <= 3 for line in data_lines)

    def test_worker_subset(self):
        chart = render_gantt(self._timeline(), workers=[1])
        assert "P1" in chart
        assert "\nP0" not in chart

    def test_tick_marks(self):
        chart = render_gantt(self._timeline())
        assert "|" in chart
        assert "0" in chart.splitlines()[0]

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            render_gantt(TimelineRecorder(1))

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            render_gantt(self._timeline(), start=10_000)

    def test_bad_worker_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            render_gantt(self._timeline(), workers=[9])
