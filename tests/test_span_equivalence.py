"""Span-stepped vs slot-stepped oracle equivalence (DESIGN.md §6).

The span-stepped simulator core must be *bit-identical* to the
slot-stepped oracle loop: same :class:`~repro.sim.metrics.
SimulationReport`, same event log, same network audit trail — across the
paper grid, both objectives (``run`` and ``run_slots``), deterministic
and randomised heuristics, simulator option variants, and the
non-Markovian mismatch sources.  Any divergence here means the span
logic skipped an observable event.
"""

import numpy as np
import pytest

from repro.core.heuristics.registry import make_scheduler
from repro.core.markov import paper_random_model
from repro.rng import RngFactory
from repro.sim.availability import SemiMarkovSource, WeibullSource
from repro.sim.events import EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.types import ProcState
from repro.workload.application import IterativeApplication
from repro.workload.scenarios import ScenarioGenerator


def run_both(build_platform, app, heuristic, *, options_kwargs=None,
             objective="run", budget=40_000, scheduler_seed=7,
             with_log=True):
    """Run span and slot modes on identical inputs; return both outcomes."""
    outcomes = {}
    for mode in ("slot", "span"):
        platform = build_platform()
        log = EventLog(enabled=with_log)
        options = SimulatorOptions(step_mode=mode, **(options_kwargs or {}))
        sim = MasterSimulator(
            platform,
            app,
            make_scheduler(heuristic, platform=platform),
            options=options,
            rng=np.random.default_rng(scheduler_seed),
            log=log,
        )
        if objective == "run":
            report = sim.run(max_slots=budget)
        else:
            report = sim.run_slots(budget)
        outcomes[mode] = (report, log.events, sim.network.usage)
    return outcomes


def assert_identical(outcomes):
    slot_report, slot_events, slot_usage = outcomes["slot"]
    span_report, span_events, span_usage = outcomes["span"]
    assert span_report == slot_report
    assert span_events == slot_events
    assert span_usage == slot_usage


GRID_SAMPLE = [(5, 5, 1), (10, 5, 3), (20, 10, 5)]


class TestPaperGridOracle:
    """Sweep a sample of the Table 2 grid in both modes."""

    @pytest.mark.parametrize("cell", GRID_SAMPLE)
    @pytest.mark.parametrize("heuristic", ["emct*", "mct", "random2w"])
    def test_run_objective_bit_identical(self, cell, heuristic):
        scenario = ScenarioGenerator(12061).scenario(*cell, 0)
        outcomes = {}
        for mode in ("slot", "span"):
            platform = scenario.build_platform(0)
            log = EventLog(enabled=True)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler(heuristic, platform=platform),
                options=SimulatorOptions(step_mode=mode, audit=True),
                rng=scenario.scheduler_rng(0, heuristic),
                log=log,
            )
            report = sim.run(max_slots=100_000)
            outcomes[mode] = (report, log.events, sim.network.usage)
        assert_identical(outcomes)
        assert outcomes["span"][0].makespan is not None  # sanity: finished

    @pytest.mark.parametrize("cell", GRID_SAMPLE[:2])
    @pytest.mark.parametrize("heuristic", ["emct*", "ud*", "lw"])
    def test_run_slots_objective_bit_identical(self, cell, heuristic):
        scenario = ScenarioGenerator(12061).scenario(*cell, 1)
        outcomes = {}
        for mode in ("slot", "span"):
            platform = scenario.build_platform(1)
            log = EventLog(enabled=True)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler(heuristic, platform=platform),
                options=SimulatorOptions(step_mode=mode, audit=True),
                rng=scenario.scheduler_rng(1, heuristic),
                log=log,
            )
            report = sim.run_slots(1500)
            outcomes[mode] = (report, log.events, sim.network.usage)
        assert_identical(outcomes)

    @pytest.mark.parametrize("trial", range(3))
    def test_fast_path_without_observers(self, trial):
        """Log and audit off: the aggressive glide path, reports only."""
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        reports = {}
        for mode in ("slot", "span"):
            platform = scenario.build_platform(trial)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler("emct*", platform=platform),
                options=SimulatorOptions(step_mode=mode),
                rng=scenario.scheduler_rng(trial, "emct*"),
            )
            reports[mode] = sim.run(max_slots=100_000)
        assert reports["span"] == reports["slot"]
        # Span mode must actually have skipped slots somewhere.
        assert reports["span"].slots_simulated > 0


class TestOptionVariants:
    """Simulator options exercise distinct span-logic branches."""

    def _scenario(self):
        return ScenarioGenerator(7).scenario(5, 5, 2, 0)

    @pytest.mark.parametrize(
        "options_kwargs",
        [
            {"replication": False},
            {"max_replicas": 0},
            {"proactive": True},
            {"replan_every_slot": True},
            {"audit": True},
        ],
        ids=["no-replication", "zero-replicas", "proactive", "replan-every",
             "audit"],
    )
    def test_option_variants_bit_identical(self, options_kwargs):
        scenario = self._scenario()
        outcomes = run_both(
            lambda: scenario.build_platform(0),
            scenario.app,
            "emct",
            options_kwargs=options_kwargs,
            budget=50_000,
        )
        assert_identical(outcomes)

    def test_unfinishable_run_same_truncation(self):
        """Budget exhaustion: span must stop at exactly the same slot."""
        platform_codes = ["r" * 8, "ur" + "r" * 6]

        def build():
            return Platform(
                [
                    Processor.from_trace(q, 2, [
                        {"u": 0, "r": 1, "d": 2}[c] for c in codes
                    ])
                    for q, codes in enumerate(platform_codes)
                ],
                ncom=1,
            )

        app = IterativeApplication(
            tasks_per_iteration=2, iterations=2, t_prog=2, t_data=1
        )
        outcomes = run_both(build, app, "mct", budget=400)
        assert_identical(outcomes)
        assert outcomes["span"][0].makespan is None
        assert outcomes["span"][0].slots_simulated == 400


class TestMismatchSources:
    """Weibull / semi-Markov ground truth through the span interface."""

    def _weibull_platform(self, seed, p=6):
        factory = RngFactory(seed)
        processors = []
        for q in range(p):
            source = WeibullSource(
                shape=0.7,
                scale=float(factory.generator("scale", q).uniform(15, 60)),
                mean_reclaimed=8.0,
                mean_down=12.0,
                p_up_to_reclaimed=0.6,
                rng=factory.generator("avail", q),
            )
            processors.append(
                Processor(
                    index=q,
                    speed_w=int(factory.generator("speed", q).integers(2, 9)),
                    availability=source,
                    belief=paper_random_model(factory.generator("belief", q)),
                )
            )
        return Platform(processors, ncom=3)

    def _semi_markov_platform(self, seed, p=5):
        factory = RngFactory(seed)
        embedded = np.array(
            [[0.0, 0.6, 0.4], [0.8, 0.0, 0.2], [1.0, 0.0, 0.0]]
        )

        def sojourn(mean):
            def sample(rng):
                return int(rng.geometric(1.0 / mean))

            return sample

        processors = []
        for q in range(p):
            source = SemiMarkovSource(
                embedded,
                {
                    int(ProcState.UP): sojourn(30.0),
                    int(ProcState.RECLAIMED): sojourn(6.0),
                    int(ProcState.DOWN): sojourn(10.0),
                },
                factory.generator("avail", q),
            )
            processors.append(
                Processor(
                    index=q,
                    speed_w=int(factory.generator("speed", q).integers(2, 7)),
                    availability=source,
                    belief=paper_random_model(factory.generator("belief", q)),
                )
            )
        return Platform(processors, ncom=2)

    @pytest.mark.parametrize("seed", [11, 12])
    @pytest.mark.parametrize("heuristic", ["emct*", "mct"])
    def test_weibull_bit_identical(self, seed, heuristic):
        app = IterativeApplication(
            tasks_per_iteration=8, iterations=4, t_prog=6, t_data=2
        )
        outcomes = run_both(
            lambda: self._weibull_platform(seed),
            app,
            heuristic,
            options_kwargs={"audit": True},
            budget=60_000,
        )
        assert_identical(outcomes)

    @pytest.mark.parametrize("objective,budget", [("run", 60_000),
                                                  ("run_slots", 2000)])
    def test_semi_markov_bit_identical(self, objective, budget):
        app = IterativeApplication(
            tasks_per_iteration=6, iterations=3, t_prog=4, t_data=2
        )
        outcomes = run_both(
            lambda: self._semi_markov_platform(23),
            app,
            "emct*",
            objective=objective,
            budget=budget,
        )
        assert_identical(outcomes)

    def test_weibull_fast_path_reports_identical(self):
        """Mismatch sources through the refined glide (no observers)."""
        app = IterativeApplication(
            tasks_per_iteration=8, iterations=4, t_prog=6, t_data=2
        )
        outcomes = run_both(
            lambda: self._weibull_platform(31),
            app,
            "emct*",
            budget=60_000,
            with_log=False,
        )
        assert outcomes["span"][0] == outcomes["slot"][0]


class TestDeterministicSchedulerDefault:
    """The unseeded-scheduler bugfix: runs without an rng are reproducible."""

    def test_random_heuristic_reproducible_without_rng(self):
        scenario = ScenarioGenerator(5).scenario(5, 5, 2, 0)
        reports = []
        for _ in range(2):
            platform = scenario.build_platform(0)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler("random2w", platform=platform),
            )
            reports.append(sim.run(max_slots=60_000))
        assert reports[0] == reports[1]

    def test_explicit_rng_still_wins(self):
        scenario = ScenarioGenerator(5).scenario(5, 5, 2, 0)

        def makespan(seed):
            platform = scenario.build_platform(0)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler("random", platform=platform),
                rng=np.random.default_rng(seed),
            )
            return sim.run(max_slots=60_000).makespan

        # Different explicit streams may disagree; the same stream must not.
        assert makespan(3) == makespan(3)


class TestRandomizedSweep:
    """Deterministic random configurations across the full heuristic
    registry — the long tail the parametrised sweeps above don't cover."""

    @pytest.mark.parametrize("config_seed", range(8))
    def test_random_config_bit_identical(self, config_seed):
        from repro.core.heuristics.registry import PAPER_HEURISTICS

        cfg = np.random.default_rng(1000 + config_seed)
        n = int(cfg.choice([1, 2, 5, 10, 20]))
        ncom = int(cfg.choice([1, 5, 10]))
        wmin = int(cfg.integers(1, 6))
        heuristic = str(cfg.choice(list(PAPER_HEURISTICS)))
        trial = int(cfg.integers(0, 3))
        objective = str(cfg.choice(["run", "run_slots"]))
        budget = int(cfg.choice([500, 3000, 30_000]))
        audit = bool(cfg.integers(0, 2))

        scenario = ScenarioGenerator(999).scenario(n, ncom, wmin, 0)
        outcomes = {}
        for mode in ("slot", "span"):
            platform = scenario.build_platform(trial)
            log = EventLog(enabled=True)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler(heuristic, platform=platform),
                options=SimulatorOptions(step_mode=mode, audit=audit),
                rng=scenario.scheduler_rng(trial, heuristic),
                log=log,
            )
            if objective == "run":
                report = sim.run(max_slots=budget)
            else:
                report = sim.run_slots(budget)
            outcomes[mode] = (report, log.events, sim.network.usage)
        assert_identical(outcomes)
