"""Tests for the random heuristic family (Section 6.2)."""

import numpy as np
import pytest

from repro.core.expectation import p_plus
from repro.core.heuristics.base import ProcessorView, SchedulingContext
from repro.core.heuristics.random_based import (
    RANDOM_WEIGHTS,
    RandomScheduler,
    WeightedRandomScheduler,
    make_random_variant,
)
from repro.core.markov import MarkovAvailabilityModel
from repro.types import ProcState


def view(index, *, speed=2, state=ProcState.UP, p_uu=0.95, p_rr=0.9, p_dd=0.9,
         belief=None, delay=0, pinned=0):
    model = belief or MarkovAvailabilityModel.from_self_loops(p_uu, p_rr, p_dd)
    return ProcessorView(
        index=index, speed_w=speed, state=state, belief=model,
        has_program=False, delay=delay, pinned_count=pinned,
    )


def context(views, seed=0, t_data=1, ncom=5):
    return SchedulingContext(
        slot=0, t_prog=5, t_data=t_data, ncom=ncom, processors=views,
        remaining_tasks=1, rng=np.random.default_rng(seed),
    )


class TestRandomScheduler:
    def test_only_up_processors_chosen(self):
        views = [
            view(0, state=ProcState.DOWN),
            view(1, state=ProcState.UP),
            view(2, state=ProcState.RECLAIMED),
        ]
        sched = RandomScheduler()
        for seed in range(20):
            placements = sched.place(context(views, seed), 5)
            assert all(p == 1 for p in placements)

    def test_no_up_processors_yields_none(self):
        views = [view(0, state=ProcState.DOWN)]
        assert RandomScheduler().place(context(views), 3) == [None, None, None]

    def test_roughly_uniform(self):
        views = [view(q) for q in range(4)]
        sched = RandomScheduler()
        counts = np.zeros(4)
        placements = sched.place(context(views, seed=7), 8000)
        for p in placements:
            counts[p] += 1
        assert np.allclose(counts / counts.sum(), 0.25, atol=0.03)

    def test_deterministic_given_seed(self):
        views = [view(q) for q in range(4)]
        a = RandomScheduler().place(context(views, seed=3), 50)
        b = RandomScheduler().place(context(views, seed=3), 50)
        assert a == b


class TestPaperWeights:
    def test_random1_weight_is_p_uu(self):
        v = view(0, p_uu=0.93)
        assert RANDOM_WEIGHTS[1](v) == pytest.approx(0.93)

    def test_random2_weight_is_p_plus(self):
        v = view(0)
        assert RANDOM_WEIGHTS[2](v) == pytest.approx(p_plus(v.belief))

    def test_random3_weight_is_pi_u(self):
        v = view(0)
        assert RANDOM_WEIGHTS[3](v) == pytest.approx(v.belief.pi_u)

    def test_random4_weight_is_one_minus_pi_d(self):
        v = view(0)
        assert RANDOM_WEIGHTS[4](v) == pytest.approx(1 - v.belief.pi_d)

    def test_missing_belief_raises(self):
        v = ProcessorView(
            index=0, speed_w=1, state=ProcState.UP, belief=None,
            has_program=False, delay=0, pinned_count=0,
        )
        sched = make_random_variant(1, weighted_by_speed=False)
        with pytest.raises(ValueError, match="no Markov belief"):
            sched.place(context([v]), 1)


class TestWeightedRandomScheduler:
    def test_heavily_weighted_processor_dominates(self):
        reliable = view(0, p_uu=0.99)
        flaky = view(1, p_uu=0.90)
        sched = WeightedRandomScheduler(
            lambda v: 1000.0 if v.index == 0 else 1.0, name="test"
        )
        placements = sched.place(context([reliable, flaky], seed=5), 500)
        share0 = placements.count(0) / 500
        assert share0 > 0.98

    def test_speed_division(self):
        fast = view(0, speed=1)
        slow = view(1, speed=10)
        sched = WeightedRandomScheduler(
            lambda v: 1.0, divide_by_speed=True, name="w"
        )
        placements = sched.place(context([fast, slow], seed=1), 4000)
        share_fast = placements.count(0) / 4000
        assert share_fast == pytest.approx(10 / 11, abs=0.03)

    def test_zero_total_weight_falls_back_to_uniform(self):
        views = [view(0), view(1)]
        sched = WeightedRandomScheduler(lambda v: 0.0, name="zero")
        placements = sched.place(context(views, seed=2), 200)
        assert set(placements) == {0, 1}

    def test_negative_weight_rejected(self):
        sched = WeightedRandomScheduler(lambda v: -1.0, name="neg")
        with pytest.raises(ValueError, match="negative weight"):
            sched.place(context([view(0)]), 1)


class TestVariantFactory:
    @pytest.mark.parametrize("variant", [1, 2, 3, 4])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_names(self, variant, weighted):
        sched = make_random_variant(variant, weighted)
        suffix = "w" if weighted else ""
        assert sched.name == f"random{variant}{suffix}"

    def test_rejects_unknown_variant(self):
        with pytest.raises(ValueError):
            make_random_variant(5, False)

    def test_w_variant_prefers_fast_processor(self):
        # Same chain, different speeds: the w variant should favour speed.
        fast = view(0, speed=1)
        slow = view(1, speed=9)
        sched = make_random_variant(1, weighted_by_speed=True)
        placements = sched.place(context([fast, slow], seed=4), 2000)
        assert placements.count(0) > placements.count(1) * 3
