"""Property-based tests (hypothesis) for the simulator's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics.registry import make_scheduler
from repro.core.markov import MarkovAvailabilityModel
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.workload.application import IterativeApplication


@st.composite
def sim_setups(draw):
    """Small random simulation setups with mostly-recoverable chains."""
    p = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    processors = []
    for q in range(p):
        model = MarkovAvailabilityModel.from_self_loops(
            rng.uniform(0.7, 0.95), rng.uniform(0.5, 0.9), rng.uniform(0.3, 0.8)
        )
        processors.append(
            Processor.from_markov(
                q,
                int(rng.integers(1, 5)),
                model,
                np.random.default_rng(seed * 31 + q),
                initial=0,
            )
        )
    ncom = draw(st.integers(1, 3))
    platform = Platform(processors, ncom=ncom)
    app = IterativeApplication(
        tasks_per_iteration=draw(st.integers(1, 6)),
        iterations=draw(st.integers(1, 3)),
        t_prog=draw(st.integers(0, 4)),
        t_data=draw(st.integers(0, 3)),
    )
    heuristic = draw(
        st.sampled_from(["mct", "mct*", "emct", "emct*", "lw", "ud*", "random",
                         "random2w"])
    )
    return platform, app, heuristic, seed


@given(sim_setups())
@settings(max_examples=60, deadline=None)
def test_simulation_invariants(setup):
    platform, app, heuristic, seed = setup
    sim = MasterSimulator(
        platform,
        app,
        make_scheduler(heuristic),
        options=SimulatorOptions(audit=True),
        rng=np.random.default_rng(seed),
    )
    report = sim.run(max_slots=8000)

    # Network budget held at every audited slot.
    sim.network.verify_invariants()

    # Task conservation: exactly m commits per completed iteration.
    assert report.tasks_committed == (
        app.tasks_per_iteration * report.completed_iterations
    )
    assert report.completed_iterations <= app.iterations

    if report.makespan is not None:
        assert report.completed_iterations == app.iterations
        assert report.makespan == report.slots_simulated
        # The final slot must be the last iteration's completion slot.
        assert report.iteration_end_slots[-1] == report.makespan - 1
        # A task needs at least t_prog + t_data + min_w slots end to end.
        min_w = min(proc.speed_w for proc in platform)
        assert report.makespan >= app.t_prog + app.t_data + min_w

    # Iteration end slots are strictly increasing.
    ends = report.iteration_end_slots
    assert all(b > a for a, b in zip(ends, ends[1:]))

    # Accounting sanity.
    assert report.compute_slots_wasted <= report.compute_slots_spent
    assert report.replicas_cancelled <= report.replicas_launched + report.tasks_committed
    assert report.comm_slots_spent >= 0


@given(sim_setups())
@settings(max_examples=25, deadline=None)
def test_simulation_is_reproducible(setup):
    platform, app, heuristic, seed = setup

    def run_once():
        # Rebuild the platform so lazily sampled traces restart identically.
        rebuilt = Platform(
            [
                Processor.from_markov(
                    proc.index,
                    proc.speed_w,
                    proc.belief,
                    np.random.default_rng(seed * 31 + proc.index),
                    initial=0,
                )
                for proc in platform
            ],
            ncom=platform.ncom,
        )
        sim = MasterSimulator(
            rebuilt,
            app,
            make_scheduler(heuristic),
            options=SimulatorOptions(audit=True),
            rng=np.random.default_rng(seed),
        )
        return sim.run(max_slots=4000)

    a, b = run_once(), run_once()
    assert a.makespan == b.makespan
    assert a.tasks_committed == b.tasks_committed
    assert a.iteration_end_slots == b.iteration_end_slots
    assert a.comm_slots_spent == b.comm_slots_spent


@given(st.integers(1, 4), st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_makespan_strictly_monotone_in_iterations(iters, seed):
    # Iterations are sequential with a barrier, and the simulation is a
    # deterministic function of the (identical) availability traces, so
    # completing one more iteration must take strictly more slots.
    # (Monotonicity in the *task count* would NOT be a valid property:
    # greedy list scheduling is subject to Graham-style anomalies.)
    def run_with(iterations):
        rng_seed = seed + 17
        platform = Platform(
            [
                Processor.from_markov(
                    q,
                    2,
                    MarkovAvailabilityModel.from_self_loops(0.9, 0.8, 0.8),
                    np.random.default_rng(rng_seed + q),
                    initial=0,
                )
                for q in range(3)
            ],
            ncom=2,
        )
        sim = MasterSimulator(
            platform,
            IterativeApplication(
                tasks_per_iteration=3, iterations=iterations, t_prog=2, t_data=1
            ),
            make_scheduler("mct"),
            options=SimulatorOptions(audit=True),
            rng=np.random.default_rng(0),
        )
        return sim.run(max_slots=8000)

    small, large = run_with(iters), run_with(iters + 1)
    if small.makespan is not None and large.makespan is not None:
        assert large.makespan > small.makespan
        # The shorter run's iteration-end slots are a prefix of the longer
        # run's (identical traces, identical decisions up to the barrier).
        assert large.iteration_end_slots[: iters] == small.iteration_end_slots
