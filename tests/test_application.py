"""Tests for the application model."""

import pytest

from repro.workload.application import IterativeApplication


class TestValidation:
    def test_valid_construction(self):
        app = IterativeApplication(
            tasks_per_iteration=10, iterations=10, t_prog=5, t_data=1
        )
        assert app.total_tasks == 100

    def test_zero_t_data_allowed(self):
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=5, t_data=0
        )
        assert app.t_data == 0

    @pytest.mark.parametrize("field,value", [
        ("tasks_per_iteration", 0),
        ("iterations", 0),
        ("t_prog", -1),
        ("t_data", -2),
    ])
    def test_rejects_bad_values(self, field, value):
        kwargs = dict(tasks_per_iteration=1, iterations=1, t_prog=1, t_data=1)
        kwargs[field] = value
        with pytest.raises((ValueError, TypeError)):
            IterativeApplication(**kwargs)


class TestFromVolumes:
    def test_exact_division(self):
        app = IterativeApplication.from_volumes(
            tasks_per_iteration=2, iterations=3, v_prog=100.0, v_data=20.0,
            bw=10.0,
        )
        assert app.t_prog == 10
        assert app.t_data == 2

    def test_rounds_up_partial_slots(self):
        app = IterativeApplication.from_volumes(
            tasks_per_iteration=1, iterations=1, v_prog=101.0, v_data=19.0,
            bw=10.0,
        )
        assert app.t_prog == 11
        assert app.t_data == 2

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bw"):
            IterativeApplication.from_volumes(
                tasks_per_iteration=1, iterations=1, v_prog=1, v_data=1, bw=0,
            )

    def test_rejects_negative_volume(self):
        with pytest.raises(ValueError, match="non-negative"):
            IterativeApplication.from_volumes(
                tasks_per_iteration=1, iterations=1, v_prog=-1, v_data=1, bw=1,
            )


class TestCcr:
    def test_paper_calibration(self):
        # Section 7: Tdata = wmin means the fastest processor has CCR 1.
        app = IterativeApplication(
            tasks_per_iteration=5, iterations=10, t_prog=5, t_data=1
        )
        assert app.communication_to_computation_ratio(1) == pytest.approx(1.0)
        assert app.communication_to_computation_ratio(10) == pytest.approx(0.1)

    def test_rejects_zero_speed(self):
        app = IterativeApplication(
            tasks_per_iteration=1, iterations=1, t_prog=1, t_data=1
        )
        with pytest.raises(ValueError):
            app.communication_to_computation_ratio(0)
