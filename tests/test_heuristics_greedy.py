"""Tests for the greedy heuristics (MCT/EMCT/LW/UD) and the placement loop."""

import numpy as np
import pytest

from repro.core.expectation import (
    expected_next_up,
    p_no_down_approx,
    p_plus,
)
from repro.core.heuristics.base import (
    ProcessorView,
    SchedulingContext,
    completion_time_estimate,
)
from repro.core.heuristics.lw import LwScheduler
from repro.core.heuristics.mct import EmctScheduler, MctScheduler
from repro.core.heuristics.passive import PassiveScheduler
from repro.core.heuristics.registry import (
    GREEDY_HEURISTICS,
    PAPER_HEURISTICS,
    TABLE2_ORDER,
    available_heuristics,
    make_scheduler,
)
from repro.core.heuristics.ud import UdScheduler
from repro.core.markov import MarkovAvailabilityModel
from repro.types import ProcState


def chain(p_uu=0.95, p_rr=0.9, p_dd=0.9):
    return MarkovAvailabilityModel.from_self_loops(p_uu, p_rr, p_dd)


def view(index, *, speed=2, state=ProcState.UP, belief=None, delay=0,
         pinned=0, has_program=False):
    return ProcessorView(
        index=index, speed_w=speed, state=state,
        belief=belief if belief is not None else chain(),
        has_program=has_program, delay=delay, pinned_count=pinned,
    )


def context(views, *, t_data=1, ncom=5, seed=0):
    return SchedulingContext(
        slot=0, t_prog=5, t_data=t_data, ncom=ncom, processors=views,
        remaining_tasks=1, rng=np.random.default_rng(seed),
    )


class TestCompletionTimeEstimate:
    def test_equation_one_first_task(self):
        v = view(0, speed=3, delay=4)
        # CT = Delay + Tdata + 0 + w.
        assert completion_time_estimate(v, 1, t_data=2) == 4 + 2 + 3

    def test_equation_one_queued_tasks(self):
        v = view(0, speed=3, delay=0)
        # nq = 3: Delay + Tdata + 2·max(Tdata, w) + w = 0 + 2 + 6 + 3.
        assert completion_time_estimate(v, 3, t_data=2) == 11

    def test_comm_dominated_pipeline(self):
        v = view(0, speed=1, delay=0)
        # max(Tdata, w) = Tdata = 4: CT = 4 + 2·4 + 1 = 13.
        assert completion_time_estimate(v, 3, t_data=4) == 13

    def test_equation_two_contention_factor(self):
        v = view(0, speed=3, delay=0)
        # factor 2 doubles Tdata everywhere it appears.
        assert completion_time_estimate(v, 2, t_data=2, contention_factor=2) == (
            0 + 4 + max(4, 3) + 3
        )

    def test_rejects_nq_zero(self):
        with pytest.raises(ValueError):
            completion_time_estimate(view(0), 0, t_data=1)


class TestMct:
    def test_prefers_fast_idle_processor(self):
        fast = view(0, speed=1)
        slow = view(1, speed=9)
        assert MctScheduler().place(context([fast, slow]), 1) == [0]

    def test_delay_can_outweigh_speed(self):
        busy_fast = view(0, speed=1, delay=20, pinned=1)
        free_slow = view(1, speed=5)
        assert MctScheduler().place(context([busy_fast, free_slow]), 1) == [1]

    def test_spreads_load_across_equal_processors(self):
        views = [view(q, speed=2) for q in range(3)]
        placements = MctScheduler().place(context(views), 3)
        assert sorted(placements) == [0, 1, 2]

    def test_tie_breaks_to_lower_index(self):
        views = [view(q, speed=2) for q in range(3)]
        assert MctScheduler().place(context(views), 1) == [0]

    def test_contention_variant_inflates_t_data(self):
        # Two processors, ncom=1: enrolling the second processor doubles
        # the correcting factor, making queueing on the first win when
        # communication dominates.
        a = view(0, speed=1)
        b = view(1, speed=1)
        ctx = context([a, b], t_data=10, ncom=1)
        placements = MctScheduler(contention=True).place(ctx, 2)
        plain = MctScheduler().place(context([a, b], t_data=10, ncom=1), 2)
        # Plain MCT spreads; MCT* piles onto P0 because a second active
        # processor would double every transfer.
        assert plain == [0, 1]
        assert placements == [0, 0]

    def test_names(self):
        assert MctScheduler().name == "mct"
        assert MctScheduler(contention=True).name == "mct*"


class TestEmct:
    def test_matches_mct_for_reliable_chains(self):
        # Nearly-always-UP chains: expectation ≈ CT, same decision as MCT.
        reliable = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.9999, p_ur=0.00005, p_ud=0.00005,
            p_ru=0.5, p_rr=0.4, p_rd=0.1,
            p_du=0.5, p_dr=0.25, p_dd=0.25,
        )
        views = [view(q, speed=s, belief=reliable) for q, s in enumerate([3, 7, 5])]
        assert EmctScheduler().place(context(views), 1) == MctScheduler().place(
            context(views), 1
        )

    def test_penalises_flaky_fast_processor(self):
        # Fast but frequently reclaimed vs slightly slower but solid.
        flaky = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.5, p_ur=0.45, p_ud=0.05,
            p_ru=0.05, p_rr=0.90, p_rd=0.05,
            p_du=0.5, p_dr=0.25, p_dd=0.25,
        )
        solid = chain(p_uu=0.99)
        views = [view(0, speed=4, belief=flaky), view(1, speed=6, belief=solid)]
        assert MctScheduler().place(context(views), 1) == [0]
        assert EmctScheduler().place(context(views), 1) == [1]

    def test_score_is_theorem2_expectation(self):
        v = view(0, speed=3, delay=2)
        sched = EmctScheduler()
        ct = completion_time_estimate(v, 1, t_data=1)
        expected = 1 + (ct - 1) * expected_next_up(v.belief)
        assert sched.score(context([v]), v, 1, 1) == pytest.approx(expected)

    def test_requires_belief(self):
        v = ProcessorView(index=0, speed_w=1, state=ProcState.UP, belief=None,
                          has_program=False, delay=0, pinned_count=0)
        with pytest.raises(ValueError, match="no Markov belief"):
            EmctScheduler().place(context([v]), 1)

    def test_names(self):
        assert EmctScheduler().name == "emct"
        assert EmctScheduler(contention=True).name == "emct*"


class TestLw:
    def test_score_is_p_plus_power(self):
        v = view(0, speed=3, delay=1)
        sched = LwScheduler()
        ct = completion_time_estimate(v, 1, t_data=1)
        assert sched.score(context([v]), v, 1, 1) == pytest.approx(
            p_plus(v.belief) ** ct
        )

    def test_prefers_crash_resistant_processor(self):
        crashy = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.85, p_ur=0.05, p_ud=0.10,
            p_ru=0.3, p_rr=0.6, p_rd=0.1,
            p_du=0.5, p_dr=0.25, p_dd=0.25,
        )
        safe = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.85, p_ur=0.149, p_ud=0.001,
            p_ru=0.3, p_rr=0.6, p_rd=0.1,
            p_du=0.5, p_dr=0.25, p_dd=0.25,
        )
        views = [view(0, belief=crashy), view(1, belief=safe)]
        assert LwScheduler().place(context(views), 1) == [1]

    def test_names(self):
        assert LwScheduler().name == "lw"
        assert LwScheduler(contention=True).name == "lw*"


class TestUd:
    def test_score_is_pud_of_expected_slots(self):
        v = view(0, speed=3, delay=1)
        sched = UdScheduler()
        ct = completion_time_estimate(v, 1, t_data=1)
        k = 1 + (ct - 1) * expected_next_up(v.belief)
        assert sched.score(context([v]), v, 1, 1) == pytest.approx(
            p_no_down_approx(v.belief, k)
        )

    def test_exact_variant_uses_matrix_power(self):
        v = view(0, speed=3, delay=1)
        approx = UdScheduler().score(context([v]), v, 1, 1)
        exact = UdScheduler(exact=True).score(context([v]), v, 1, 1)
        assert approx != pytest.approx(exact, abs=1e-12) or approx == exact

    def test_prefers_crash_resistant_processor(self):
        crashy = MarkovAvailabilityModel.from_self_loops(0.90, 0.9, 0.9)
        safe = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.90, p_ur=0.099, p_ud=0.001,
            p_ru=0.05, p_rr=0.9, p_rd=0.05,
            p_du=0.05, p_dr=0.05, p_dd=0.9,
        )
        views = [view(0, belief=crashy), view(1, belief=safe)]
        assert UdScheduler().place(context(views), 1) == [1]

    def test_names(self):
        assert UdScheduler().name == "ud"
        assert UdScheduler(contention=True).name == "ud*"
        assert UdScheduler(exact=True).name == "ud-exact"


class TestHeapPlacementEquivalence:
    """The lazy-heap place() must match the naive one-by-one reference."""

    @staticmethod
    def reference_place(scheduler, ctx, n_tasks):
        candidates = [v for v in ctx.processors if v.is_up]
        placements = []
        nq = {v.index: 0 for v in candidates}
        n_active = sum(1 for v in candidates if v.pinned_count > 0)
        for _ in range(n_tasks):
            if not candidates:
                placements.append(None)
                continue
            best, best_score = None, None
            for v in candidates:
                spec = n_active + (1 if nq[v.index] == 0 and v.pinned_count == 0 else 0)
                factor = scheduler.contention_factor(ctx, spec)
                s = scheduler.score(ctx, v, nq[v.index] + 1, factor)
                better = (
                    best is None
                    or (scheduler.maximize and s > best_score)
                    or (not scheduler.maximize and s < best_score)
                )
                if better:
                    best, best_score = v.index, s
            if nq[best] == 0:
                v = next(x for x in candidates if x.index == best)
                if v.pinned_count == 0:
                    n_active += 1
            nq[best] += 1
            placements.append(best)
        return placements

    @pytest.mark.parametrize("name", GREEDY_HEURISTICS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference(self, name, seed):
        rng = np.random.default_rng(seed)
        views = []
        for q in range(8):
            belief = MarkovAvailabilityModel.from_self_loops(
                *rng.uniform(0.85, 0.99, size=3)
            )
            views.append(
                view(
                    q,
                    speed=int(rng.integers(1, 10)),
                    belief=belief,
                    delay=int(rng.integers(0, 12)),
                    pinned=int(rng.integers(0, 2)),
                )
            )
        ctx = context(views, t_data=int(rng.integers(1, 6)), ncom=2)
        sched_a = make_scheduler(name)
        sched_b = make_scheduler(name)
        n_tasks = int(rng.integers(1, 15))
        assert sched_a.place(ctx, n_tasks) == self.reference_place(
            sched_b, ctx, n_tasks
        )


class TestPassive:
    def test_sticks_to_choice_until_down(self):
        views = [view(0, speed=1), view(1, speed=9)]
        sched = PassiveScheduler()
        first = sched.place(context(views), 2)
        # Later a better processor appears but nothing went DOWN: sticky.
        better = [view(0, speed=1, delay=50, pinned=1), view(1, speed=9)]
        second = sched.place(context(better), 2)
        assert second == first

    def test_replaces_down_processor(self):
        views = [view(0, speed=1), view(1, speed=9)]
        sched = PassiveScheduler()
        first = sched.place(context(views), 1)
        assert first == [0]
        down = [view(0, speed=1, state=ProcState.DOWN), view(1, speed=9)]
        second = sched.place(context(down), 1)
        assert second == [1]

    def test_replica_batches_use_inner(self):
        views = [view(0), view(1)]
        sched = PassiveScheduler()
        placements = sched.place(context(views), 1, allowed=[1])
        assert placements == [1]

    def test_reset(self):
        sched = PassiveScheduler()
        sched.place(context([view(0)]), 1)
        sched.reset()
        assert sched._memory == []


class TestRegistry:
    def test_all_paper_heuristics_present(self):
        assert len(PAPER_HEURISTICS) == 17
        for name in PAPER_HEURISTICS:
            assert make_scheduler(name).name == name

    def test_table2_order_is_a_permutation(self):
        assert sorted(TABLE2_ORDER) == sorted(PAPER_HEURISTICS)

    def test_greedy_subset(self):
        assert set(GREEDY_HEURISTICS) <= set(PAPER_HEURISTICS)
        assert len(GREEDY_HEURISTICS) == 8

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(KeyError, match="known heuristics"):
            make_scheduler("quantum")

    def test_factories_return_fresh_instances(self):
        assert make_scheduler("emct") is not make_scheduler("emct")

    def test_available_sorted(self):
        names = available_heuristics()
        assert names == sorted(names)
        assert "passive" in names
