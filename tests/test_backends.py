"""Tests for execution backends: seed stability, merging, checkpointing."""

import pickle

import pytest

from repro.experiments.backends import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    as_scenario_ref,
    available_backends,
    make_backend,
    resolve_scenario,
)
from repro.experiments.harness import (
    CampaignConfig,
    CampaignResult,
    iter_work_units,
    run_campaign,
)
from repro.experiments.persistence import CampaignCheckpoint
from repro.workload.scenarios import Scenario, ScenarioGenerator, ScenarioSpec

HEURISTICS = ("mct", "emct", "random")


@pytest.fixture(scope="module")
def scenarios():
    return [ScenarioGenerator(3).scenario(5, 5, 1, i) for i in range(3)]


@pytest.fixture(scope="module")
def config():
    return CampaignConfig(heuristics=HEURISTICS, trials=2)


@pytest.fixture(scope="module")
def serial_result(scenarios, config):
    return run_campaign(scenarios, config, backend=SerialBackend())


class TestScenarioSpec:
    def test_round_trip(self, scenarios):
        spec = ScenarioSpec.from_scenario(scenarios[0])
        rebuilt = spec.build()
        assert rebuilt.key == scenarios[0].key
        assert rebuilt.speeds == scenarios[0].speeds
        assert rebuilt.app == scenarios[0].app

    def test_spec_is_picklable_and_tiny(self, scenarios):
        spec = ScenarioSpec.from_scenario(scenarios[0])
        blob = pickle.dumps(spec)
        assert pickle.loads(blob) == spec
        assert len(blob) < 200  # name+seed, not matrices

    def test_hand_built_scenario_rejected(self, scenarios):
        original = scenarios[0]
        mutant = Scenario(
            key=("custom", 1),
            models=original.models,
            speeds=original.speeds,
            ncom=original.ncom,
            app=original.app,
            root_seed=original.root_seed,
        )
        with pytest.raises(ValueError):
            ScenarioSpec.from_scenario(mutant)
        # …but the ref fallback keeps it usable on in-process backends.
        assert resolve_scenario(as_scenario_ref(mutant)) is mutant

    def test_generator_scenario_becomes_spec(self, scenarios):
        assert isinstance(as_scenario_ref(scenarios[0]), ScenarioSpec)


class TestRegistry:
    def test_available(self):
        assert available_backends() == [
            "distributed", "process", "serial", "thread"
        ]

    def test_default_is_serial(self):
        assert isinstance(make_backend(None), SerialBackend)

    def test_name_resolution_with_jobs(self):
        backend = make_backend("process", jobs=4)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 4

    def test_instance_passthrough(self):
        backend = ThreadBackend(2)
        assert make_backend(backend) is backend

    def test_instance_plus_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            make_backend(ThreadBackend(2), jobs=4)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown backend"):
            make_backend("gpu")

    def test_bad_job_counts(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(-1)
        with pytest.raises(ValueError):
            ProcessPoolBackend(2, chunk_size=0)


class TestWorkUnits:
    def test_campaign_order(self, scenarios, config):
        units = list(iter_work_units(scenarios, config))
        assert len(units) == len(scenarios) * config.trials
        expected = [
            (*s.key, t) for s in scenarios for t in range(config.trials)
        ]
        assert [u.instance_key for u in units] == expected

    def test_units_are_picklable(self, scenarios, config):
        unit = next(iter_work_units(scenarios, config))
        clone = pickle.loads(pickle.dumps(unit))
        assert clone.run() == unit.run()

    def test_unit_result_flags_truncation(self, scenarios):
        config = CampaignConfig(heuristics=("mct",), trials=1, max_slots=3)
        unit = next(iter_work_units(scenarios, config))
        outcome = unit.run()
        assert outcome.truncated == ("mct",)
        assert outcome.makespans["mct"] == 3


class TestSeedStability:
    """The acceptance bar: any backend, any job count — identical stats."""

    @pytest.mark.parametrize(
        "backend",
        [
            ProcessPoolBackend(1),
            ProcessPoolBackend(4),
            ProcessPoolBackend(4, chunk_size=1),
            ThreadBackend(4),
        ],
        ids=["process-1", "process-4", "process-4-chunk-1", "thread-4"],
    )
    def test_identical_to_serial(self, scenarios, config, serial_result, backend):
        result = run_campaign(scenarios, config, backend=backend)
        # Per-(scenario, trial, heuristic) makespans, bit for bit…
        assert result.records == serial_result.records
        # …and every derived statistic.
        assert result.accumulator == serial_result.accumulator
        assert result.per_scenario == serial_result.per_scenario
        assert result.truncated_runs == serial_result.truncated_runs
        assert result.accumulator.table() == serial_result.accumulator.table()

    def test_progress_in_campaign_order(self, scenarios, config):
        seen = []
        run_campaign(
            scenarios,
            config,
            backend=ThreadBackend(4),
            progress=lambda done, key: seen.append((done, key)),
        )
        assert [done for done, _key in seen] == list(
            range(1, len(scenarios) * config.trials + 1)
        )
        assert [key for _done, key in seen] == [
            (*s.key, t) for s in scenarios for t in range(config.trials)
        ]


class TestCampaignMerge:
    def test_partials_reproduce_serial(self, scenarios, config, serial_result):
        first = run_campaign(scenarios[:1], config)
        rest = run_campaign(scenarios[1:], config)
        assert first.merge(rest) == serial_result

    def test_empty_identity(self, scenarios, config, serial_result):
        empty = CampaignResult()
        assert empty.merge(serial_result) == serial_result
        assert serial_result.merge(empty) == serial_result

    def test_associativity(self, scenarios, config):
        parts = [run_campaign([s], config) for s in scenarios]
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        assert left == right

    def test_merge_does_not_mutate(self, scenarios, config):
        a = run_campaign(scenarios[:1], config)
        b = run_campaign(scenarios[1:], config)
        instances_before = (a.instances, b.instances)
        a.merge(b)
        assert (a.instances, b.instances) == instances_before

    def test_budget_flag_propagates(self, scenarios):
        tight = CampaignConfig(heuristics=("mct",), trials=1, max_slots=3)
        truncated = run_campaign(scenarios[:1], tight)
        clean = run_campaign(
            scenarios[1:], CampaignConfig(heuristics=("mct",), trials=1)
        )
        assert truncated.truncated_runs
        merged = truncated.merge(clean)
        assert merged.truncated_runs == truncated.truncated_runs
        merged_other_way = clean.merge(truncated)
        assert merged_other_way.truncated_runs == truncated.truncated_runs


class TestCheckpoint:
    def test_resume_skips_completed_units(
        self, tmp_path, scenarios, config, serial_result
    ):
        path = tmp_path / "campaign.ckpt"
        journal = CampaignCheckpoint(path)
        # Pretend the first two units completed before an interruption.
        for key, makespans in serial_result.records[:2]:
            journal.append(key, makespans, ())
        executed = []
        resumed = run_campaign(
            scenarios,
            config,
            checkpoint=path,
            progress=lambda done, key: executed.append(key),
        )
        assert resumed == serial_result
        # The journal now holds every unit → a rerun simulates nothing
        # (and still reproduces the result bit-for-bit).
        done = journal.load()
        assert len(done) == len(serial_result.records)
        rerun = run_campaign(scenarios, config, checkpoint=path)
        assert rerun == serial_result

    def test_parallel_run_journals_every_unit(
        self, tmp_path, scenarios, config, serial_result
    ):
        path = tmp_path / "parallel.ckpt"
        result = run_campaign(
            scenarios, config, backend="thread", jobs=4, checkpoint=path
        )
        assert result == serial_result
        assert len(CampaignCheckpoint(path).load()) == len(result.records)

    def test_heuristic_set_change_invalidates_entry(
        self, tmp_path, scenarios, serial_result
    ):
        path = tmp_path / "stale.ckpt"
        journal = CampaignCheckpoint(path)
        for key, makespans in serial_result.records:
            journal.append(key, makespans, ())
        widened = CampaignConfig(heuristics=(*HEURISTICS, "lw"), trials=2)
        result = run_campaign(scenarios, widened, checkpoint=path)
        assert set(result.records[0][1]) == set(widened.heuristics)

    def test_trailing_partial_line_tolerated(self, tmp_path, serial_result):
        path = tmp_path / "torn.ckpt"
        journal = CampaignCheckpoint(path)
        key, makespans = serial_result.records[0]
        journal.append(key, makespans, ())
        with path.open("a") as handle:
            handle.write('{"key": [5, 5, 1,')  # torn write
        assert len(journal.load()) == 1

    def test_torn_header_treated_as_empty_and_healed(
        self, tmp_path, serial_result
    ):
        path = tmp_path / "torn-header.ckpt"
        path.write_text('{"form')  # killed during the very first append
        journal = CampaignCheckpoint(path)
        assert journal.load() == {}
        key, makespans = serial_result.records[0]
        journal.append(key, makespans, ())
        assert len(CampaignCheckpoint(path).load()) == 1

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "notes.json"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a campaign checkpoint"):
            CampaignCheckpoint(path).load()

    def test_missing_file_means_nothing_done(self, tmp_path):
        assert CampaignCheckpoint(tmp_path / "absent").load() == {}

    def test_different_campaign_rejected(self, tmp_path, scenarios, config):
        # Same path, different seed material → refuse to blend results.
        path = tmp_path / "seeded.ckpt"
        run_campaign(scenarios, config, checkpoint=path)
        other = [ScenarioGenerator(4).scenario(5, 5, 1, i) for i in range(3)]
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(other, config, checkpoint=path)

    def test_different_options_rejected(self, tmp_path, scenarios, config):
        from repro.sim.master import SimulatorOptions

        path = tmp_path / "opts.ckpt"
        run_campaign(scenarios, config, checkpoint=path)
        changed = CampaignConfig(
            heuristics=config.heuristics,
            trials=config.trials,
            options=SimulatorOptions(replication=False),
        )
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(scenarios, changed, checkpoint=path)

    def test_widened_heuristics_and_extra_trials_resume(
        self, tmp_path, scenarios, config
    ):
        # Changing *which* units exist is a legitimate resume: extra
        # trials append new units, widened heuristics re-run old ones.
        path = tmp_path / "extend.ckpt"
        run_campaign(scenarios, config, checkpoint=path)
        extended = CampaignConfig(
            heuristics=(*config.heuristics, "lw"), trials=config.trials + 1
        )
        result = run_campaign(scenarios, extended, checkpoint=path)
        assert result.instances == len(scenarios) * extended.trials
        assert set(result.records[0][1]) == set(extended.heuristics)
