"""Tests for the experiment harness, table/figure runners and the CLI."""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.dfb import DfbAccumulator
from repro.experiments.figure2 import render_figure2, run_figure2
from repro.experiments.harness import CampaignConfig, run_campaign, run_instance
from repro.experiments.offline_study import (
    counterexample_study,
    figure1_study,
    render_offline_study,
)
from repro.experiments.table2 import PAPER_TABLE2, render_table2, run_table2
from repro.experiments.table3 import PAPER_TABLE3, render_table3, run_table3
from repro.sim.master import SimulatorOptions
from repro.workload.scenarios import ScenarioGenerator

QUICK = dict(n_values=(5,), ncom_values=(5,), wmin_values=(1,))


class TestHarness:
    def test_run_instance_deterministic(self):
        scenario = ScenarioGenerator(3).scenario(5, 5, 1, 0)
        a = run_instance(scenario, 0, "mct")
        b = run_instance(scenario, 0, "mct")
        assert a == b

    def test_campaign_aggregates(self):
        scenarios = [ScenarioGenerator(3).scenario(5, 5, 1, i) for i in range(2)]
        config = CampaignConfig(heuristics=("mct", "random"), trials=2)
        result = run_campaign(scenarios, config)
        assert result.instances == 4
        assert result.accumulator.instance_count == 4
        assert set(result.per_scenario) == {s.key for s in scenarios}

    def test_campaign_progress_callback(self):
        scenarios = [ScenarioGenerator(3).scenario(5, 5, 1, 0)]
        seen = []
        run_campaign(
            scenarios,
            CampaignConfig(heuristics=("mct",), trials=2),
            progress=lambda done, key: seen.append(done),
        )
        assert seen == [1, 2]

    def test_truncation_recorded(self):
        scenarios = [ScenarioGenerator(3).scenario(5, 5, 1, 0)]
        config = CampaignConfig(heuristics=("mct",), trials=1, max_slots=3)
        result = run_campaign(scenarios, config)
        assert len(result.truncated_runs) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(heuristics=())
        with pytest.raises(ValueError):
            CampaignConfig(heuristics=("mct",), trials=0)
        with pytest.raises(ValueError):
            CampaignConfig(heuristics=("mct",), max_slots=0)

    def test_options_forwarded(self):
        scenario = ScenarioGenerator(3).scenario(5, 5, 1, 0)
        makespan = run_instance(
            scenario, 0, "mct",
            options=SimulatorOptions(replication=False),
        )
        assert makespan > 0


class TestTable2:
    def test_quick_run_and_render(self):
        result = run_table2(
            scenarios_per_cell=1, trials=1,
            heuristics=("mct", "emct", "random"),
            **QUICK,
        )
        rows = result.rows()
        assert {name for name, _, _ in rows} == {"mct", "emct", "random"}
        text = render_table2(result)
        assert "Table 2" in text
        assert "dfb (paper)" in text
        assert "mct" in text

    def test_paper_reference_complete(self):
        assert len(PAPER_TABLE2) == 17
        assert PAPER_TABLE2["emct"] == (4.77, 80320)

    def test_dfb_nonnegative_with_a_winner(self):
        result = run_table2(
            scenarios_per_cell=1, trials=1,
            heuristics=("mct", "emct"),
            **QUICK,
        )
        for _name, dfb, wins in result.rows():
            assert dfb >= 0.0
            assert wins >= 0
        assert sum(w for _, _, w in result.rows()) >= result.campaign.instances


class TestTable3:
    def test_quick_run_and_render(self):
        result = run_table3(5, scenarios=1, trials=1,
                            heuristics=("mct", "mct*"))
        text = render_table3(result)
        assert "×5" in text
        assert "dfb (paper)" in text

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError, match="must be 5 or 10"):
            run_table3(3)

    def test_paper_reference(self):
        assert PAPER_TABLE3[5]["emct*"] == 3.87
        assert PAPER_TABLE3[10]["ud*"] == 2.76
        assert set(PAPER_TABLE3[5]) == set(PAPER_TABLE3[10])


class TestFigure2:
    def test_series_aligned_to_wmin(self):
        result = run_figure2(
            scenarios_per_cell=1, trials=1,
            heuristics=("mct", "emct"),
            n_values=(5,), ncom_values=(5,), wmin_values=(1, 2),
        )
        series = result.series()
        assert set(series) == {"mct", "emct"}
        assert all(len(values) == 2 for values in series.values())

    def test_render_contains_chart_and_table(self):
        result = run_figure2(
            scenarios_per_cell=1, trials=1,
            heuristics=("mct", "emct"),
            n_values=(5,), ncom_values=(5,), wmin_values=(1, 2),
        )
        text = render_figure2(result)
        assert "Figure 2" in text
        assert "legend:" in text
        assert "wmin" in text


class TestOfflineStudy:
    def test_figure1_study(self):
        study = figure1_study()
        assert study.recovered_satisfies
        assert study.schedule_makespan <= study.horizon
        assert "C1" in study.gadget

    def test_counterexample_study(self):
        analysis = counterexample_study()
        assert analysis.optimal_makespan == 9
        assert analysis.mct_online_makespan > 9

    def test_render(self):
        text = render_offline_study()
        assert "Figure 1" in text
        assert "(paper: 9)" in text


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table3", "--factor", "5"])
        assert args.command == "table3"
        assert args.factor == 5

    def test_counterexample_command(self, capsys):
        assert main(["counterexample"]) == 0
        out = capsys.readouterr().out
        assert "optimal makespan" in out.lower()

    def test_figure1_command(self, capsys):
        assert main(["figure1"]) == 0
        assert "C1" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        assert main(["demo", "--tasks", "2", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "task_commit" in out

    def test_table2_command_quick(self, capsys):
        assert main([
            "table2", "--scenarios", "1", "--trials", "1", "--wmin", "1",
        ]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFigure2SeriesMath:
    def test_per_wmin_average_uses_only_matching_scenarios(self):
        # Construct a fake campaign result with two wmin cells and check
        # the marginalisation.
        from repro.experiments.figure2 import Figure2Result
        from repro.experiments.harness import CampaignResult

        campaign = CampaignResult()
        acc1 = DfbAccumulator()
        acc1.add_instance(("k1",), {"mct": 100, "emct": 110})
        campaign.per_scenario[(5, 5, 1, 1, 0)] = acc1
        acc2 = DfbAccumulator()
        acc2.add_instance(("k2",), {"mct": 130, "emct": 100})
        campaign.per_scenario[(5, 5, 2, 1, 0)] = acc2
        result = Figure2Result(
            campaign=campaign, wmin_values=(1, 2),
            heuristics=("mct", "emct"), scenarios_per_cell=1, trials=1,
        )
        series = result.series()
        assert series["mct"][0] == pytest.approx(0.0)
        assert series["emct"][0] == pytest.approx(10.0)
        assert series["mct"][1] == pytest.approx(30.0)
        assert series["emct"][1] == pytest.approx(0.0)


class TestReportDeterminism:
    """Regression: two report builds must produce identical CI bounds."""

    def test_table2_cis_identical_across_builds(self):
        def build():
            result = run_table2(
                scenarios_per_cell=1, trials=1,
                heuristics=("mct", "emct", "random"),
                **QUICK,
            )
            return result.rows_with_ci(), render_table2(result)

        (rows_a, text_a), (rows_b, text_b) = build(), build()
        assert rows_a == rows_b
        assert text_a == text_b
        for _name, dfb, (low, high), _wins in rows_a:
            assert low <= dfb <= high

    def test_ci_stream_independent_of_row_order(self):
        result = run_table2(
            scenarios_per_cell=1, trials=1,
            heuristics=("mct", "emct"),
            **QUICK,
        )
        acc = result.campaign.accumulator
        # Querying one heuristic's CI twice (any order) gives the same
        # bounds: streams derive from the name, not from shared state.
        first = acc.average_dfb_ci("emct")
        acc.average_dfb_ci("mct")
        assert acc.average_dfb_ci("emct") == first
