"""Tests for the 3-state Markov availability model."""

import numpy as np
import pytest

from repro.core.markov import (
    MarkovAvailabilityModel,
    empirical_state_frequencies,
    paper_random_model,
    stationary_distribution,
)
from repro.types import ProcState


def chain(p_uu=0.95, p_rr=0.92, p_dd=0.90):
    return MarkovAvailabilityModel.from_self_loops(p_uu, p_rr, p_dd)


class TestStationaryDistribution:
    def test_symmetric_chain_is_uniform(self):
        matrix = np.full((3, 3), 1 / 3)
        pi = stationary_distribution(matrix)
        assert np.allclose(pi, [1 / 3, 1 / 3, 1 / 3])

    def test_identity_like_two_state(self):
        matrix = np.array([[0.9, 0.1], [0.3, 0.7]])
        pi = stationary_distribution(matrix)
        # Detailed balance: pi_0 * 0.1 = pi_1 * 0.3.
        assert pi[0] == pytest.approx(0.75)
        assert pi[1] == pytest.approx(0.25)

    def test_fixed_point_property(self):
        model = chain()
        pi = model.stationary
        assert np.allclose(pi @ model.matrix, pi, atol=1e-12)
        assert pi.sum() == pytest.approx(1.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            stationary_distribution(np.ones((2, 3)))

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError, match="sum to 1"):
            stationary_distribution(np.array([[0.5, 0.2], [0.5, 0.5]]))

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.array([[1.5, -0.5], [0.5, 0.5]]))


class TestModelConstruction:
    def test_named_accessors(self):
        model = MarkovAvailabilityModel.from_probabilities(
            p_uu=0.9, p_ur=0.06, p_ud=0.04,
            p_ru=0.2, p_rr=0.7, p_rd=0.1,
            p_du=0.5, p_dr=0.1, p_dd=0.4,
        )
        assert model.p_uu == pytest.approx(0.9)
        assert model.p_ur == pytest.approx(0.06)
        assert model.p_ud == pytest.approx(0.04)
        assert model.p_ru == pytest.approx(0.2)
        assert model.p_rr == pytest.approx(0.7)
        assert model.p_rd == pytest.approx(0.1)
        assert model.p_du == pytest.approx(0.5)
        assert model.p_dr == pytest.approx(0.1)
        assert model.p_dd == pytest.approx(0.4)

    def test_p_accessor_by_state(self):
        model = chain()
        assert model.p(ProcState.UP, ProcState.UP) == model.p_uu
        assert model.p(ProcState.RECLAIMED, ProcState.DOWN) == model.p_rd

    def test_from_self_loops_off_diagonals(self):
        model = chain(0.9, 0.92, 0.94)
        assert model.p_ur == pytest.approx(0.05)
        assert model.p_ud == pytest.approx(0.05)
        assert model.p_ru == pytest.approx(0.04)
        assert model.p_du == pytest.approx(0.03)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="3x3"):
            MarkovAvailabilityModel(np.eye(2))

    def test_rejects_non_stochastic_rows(self):
        bad = np.array([[0.5, 0.2, 0.2], [0.1, 0.8, 0.1], [0.3, 0.3, 0.4]])
        with pytest.raises(ValueError, match="sum to 1"):
            MarkovAvailabilityModel(bad)

    def test_rejects_negative_probability(self):
        bad = np.array([[1.2, -0.1, -0.1], [0.1, 0.8, 0.1], [0.3, 0.3, 0.4]])
        with pytest.raises(ValueError):
            MarkovAvailabilityModel(bad)

    def test_matrix_is_readonly(self):
        model = chain()
        with pytest.raises(ValueError):
            model.matrix[0, 0] = 0.0

    def test_stationary_sums_to_one(self):
        model = chain()
        assert model.pi_u + model.pi_r + model.pi_d == pytest.approx(1.0)


class TestSampling:
    def test_trace_length_and_dtype(self):
        rng = np.random.default_rng(0)
        trace = chain().sample_trace(500, rng, initial=0)
        assert trace.shape == (500,)
        assert trace.dtype == np.uint8
        assert set(np.unique(trace)) <= {0, 1, 2}

    def test_trace_starts_at_initial(self):
        rng = np.random.default_rng(0)
        trace = chain().sample_trace(10, rng, initial=2)
        assert trace[0] == 2

    def test_initial_none_uses_stationary(self):
        model = chain()
        rng = np.random.default_rng(1)
        firsts = [model.sample_trace(1, rng)[0] for _ in range(4000)]
        freq = np.bincount(firsts, minlength=3) / len(firsts)
        assert np.allclose(freq, model.stationary, atol=0.03)

    def test_empirical_frequencies_approach_stationary(self):
        model = chain()
        rng = np.random.default_rng(7)
        trace = model.sample_trace(200_000, rng)
        freq = empirical_state_frequencies(trace)
        assert np.allclose(freq, model.stationary, atol=0.02)

    def test_deterministic_given_seed(self):
        model = chain()
        t1 = model.sample_trace(100, np.random.default_rng(3), initial=0)
        t2 = model.sample_trace(100, np.random.default_rng(3), initial=0)
        assert np.array_equal(t1, t2)

    def test_extend_trace_preserves_prefix(self):
        model = chain()
        rng = np.random.default_rng(5)
        trace = model.sample_trace(50, rng, initial=0)
        extended = model.extend_trace(trace, 50, rng)
        assert len(extended) == 100
        assert np.array_equal(extended[:50], trace)

    def test_step_transitions_follow_matrix(self):
        model = chain(0.8, 0.9, 0.95)
        rng = np.random.default_rng(11)
        nxt = np.array([model.step(0, rng) for _ in range(20_000)])
        freq = np.bincount(nxt, minlength=3) / len(nxt)
        assert np.allclose(freq, model.matrix[0], atol=0.01)

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError, match="initial state"):
            chain().sample_trace(5, np.random.default_rng(0), initial=4)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            chain().sample_trace(0, np.random.default_rng(0))

    def test_single_slot_trace(self):
        trace = chain().sample_trace(1, np.random.default_rng(0), initial=1)
        assert list(trace) == [1]


class TestPaperRandomModel:
    def test_self_loops_in_paper_range(self):
        rng = np.random.default_rng(42)
        for _ in range(100):
            model = paper_random_model(rng)
            for loop in (model.p_uu, model.p_rr, model.p_dd):
                assert 0.90 <= loop <= 0.99

    def test_off_diagonals_split_evenly(self):
        model = paper_random_model(np.random.default_rng(0))
        assert model.p_ur == pytest.approx(model.p_ud)
        assert model.p_ru == pytest.approx(model.p_rd)
        assert model.p_du == pytest.approx(model.p_dr)
        assert model.p_ur == pytest.approx(0.5 * (1 - model.p_uu))

    def test_deterministic_given_rng(self):
        a = paper_random_model(np.random.default_rng(9))
        b = paper_random_model(np.random.default_rng(9))
        assert np.allclose(a.matrix, b.matrix)


class TestEmpiricalFrequencies:
    def test_counts(self):
        freq = empirical_state_frequencies([0, 0, 1, 2])
        assert np.allclose(freq, [0.5, 0.25, 0.25])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_state_frequencies([])
