"""Property-based tests (hypothesis) for the scheduling heuristics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heuristics.base import ProcessorView, SchedulingContext
from repro.core.heuristics.registry import (
    GREEDY_HEURISTICS,
    PAPER_HEURISTICS,
    make_scheduler,
)
from repro.core.markov import MarkovAvailabilityModel
from repro.types import ProcState


@st.composite
def contexts(draw):
    """Random scheduling contexts with a mix of UP/RECLAIMED/DOWN views."""
    p = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 100_000))
    rng = np.random.default_rng(seed)
    views = []
    for q in range(p):
        belief = MarkovAvailabilityModel.from_self_loops(
            rng.uniform(0.7, 0.99), rng.uniform(0.5, 0.99), rng.uniform(0.5, 0.99)
        )
        views.append(
            ProcessorView(
                index=q,
                speed_w=int(rng.integers(1, 12)),
                state=ProcState(int(rng.integers(0, 3))),
                belief=belief,
                has_program=bool(rng.integers(0, 2)),
                delay=int(rng.integers(0, 30)),
                pinned_count=int(rng.integers(0, 3)),
            )
        )
    ctx = SchedulingContext(
        slot=draw(st.integers(0, 100)),
        t_prog=draw(st.integers(0, 10)),
        t_data=draw(st.integers(0, 6)),
        ncom=draw(st.one_of(st.none(), st.integers(1, 5))),
        processors=views,
        remaining_tasks=0,
        rng=np.random.default_rng(seed + 1),
    )
    return ctx


@given(contexts(), st.integers(0, 20),
       st.sampled_from(PAPER_HEURISTICS + ["passive", "ud-exact"]))
@settings(max_examples=120, deadline=None)
def test_placements_well_formed(ctx, n_tasks, name):
    scheduler = make_scheduler(name)
    placements = scheduler.place(ctx, n_tasks)
    assert len(placements) == n_tasks
    up = {view.index for view in ctx.processors if view.is_up}
    non_down = {
        view.index
        for view in ctx.processors
        if view.state != ProcState.DOWN
    }
    for choice in placements:
        if choice is None:
            continue
        # The passive baseline may stick to RECLAIMED processors (by
        # design); every other heuristic must target UP processors only.
        if name == "passive":
            assert choice in non_down
        else:
            assert choice in up
    if not up:
        if name != "passive":
            assert all(choice is None for choice in placements)


@given(contexts(), st.integers(1, 15), st.sampled_from(GREEDY_HEURISTICS))
@settings(max_examples=80, deadline=None)
def test_greedy_placement_deterministic(ctx, n_tasks, name):
    a = make_scheduler(name).place(ctx, n_tasks)
    b = make_scheduler(name).place(ctx, n_tasks)
    assert a == b


@given(contexts(), st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_restricting_allowed_set_is_respected(ctx, n_tasks):
    up = [view.index for view in ctx.processors if view.is_up]
    allowed = up[: max(1, len(up) // 2)]
    scheduler = make_scheduler("mct")
    placements = scheduler.place(ctx, n_tasks, allowed=allowed)
    for choice in placements:
        assert choice is None or choice in allowed


@given(contexts(), st.sampled_from(GREEDY_HEURISTICS))
@settings(max_examples=60, deadline=None)
def test_single_placement_optimises_score(ctx, name):
    # The first placement must carry the extremal speculative score among
    # UP candidates (ties toward lower index).
    scheduler = make_scheduler(name)
    ups = [view for view in ctx.processors if view.is_up]
    placement = scheduler.place(ctx, 1)[0]
    if not ups:
        assert placement is None
        return
    n_active = sum(1 for view in ups if view.pinned_count > 0)
    scores = {}
    for view in ups:
        spec = n_active + (1 if view.pinned_count == 0 else 0)
        factor = scheduler.contention_factor(ctx, spec)
        scores[view.index] = scheduler.score(ctx, view, 1, factor)
    best = (
        max(scores.values()) if scheduler.maximize else min(scores.values())
    )
    winners = [index for index, score in scores.items() if score == best]
    assert placement == min(winners)
