"""Integration tests: full runs across the heuristic registry.

These exercise the whole stack — scenario generation, trace sampling,
every heuristic, the simulator with auditing — on fixed seeds, and check
the cross-cutting behaviours the unit tests cannot see.
"""

import numpy as np
import pytest

from repro.core.heuristics.registry import (
    HEURISTIC_FACTORIES,
    PAPER_HEURISTICS,
    make_scheduler,
)
from repro.core.markov import MarkovAvailabilityModel
from repro.sim.availability import WeibullSource
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.platform import Platform, Processor
from repro.workload.application import IterativeApplication
from repro.workload.scenarios import ScenarioGenerator


@pytest.fixture(scope="module")
def scenario():
    return ScenarioGenerator(2024).scenario(10, 5, 2, 0)


class TestAllHeuristicsComplete:
    @pytest.mark.parametrize("name", sorted(HEURISTIC_FACTORIES))
    def test_heuristic_completes_with_audit(self, scenario, name):
        platform = scenario.build_platform(trial=0)
        sim = MasterSimulator(
            platform,
            scenario.app,
            make_scheduler(name),
            options=SimulatorOptions(audit=True),
            rng=scenario.scheduler_rng(0, name),
        )
        report = sim.run(max_slots=100_000)
        sim.network.verify_invariants()
        assert report.makespan is not None, f"{name} failed to finish"
        assert report.tasks_committed == scenario.app.total_tasks

    def test_availability_identical_across_heuristics(self, scenario):
        # Paired-instance guarantee at the integration level: the traces a
        # heuristic observes do not depend on the heuristic.
        observed = {}
        for name in ("mct", "random", "ud*"):
            platform = scenario.build_platform(trial=1)
            observed[name] = [
                platform[q].availability.state_at(t)
                for q in range(scenario.p)
                for t in range(200)
            ]
        assert observed["mct"] == observed["random"] == observed["ud*"]


class TestCrossHeuristicSanity:
    def test_informed_beats_uniform_random_on_average(self):
        # Fixed-seed, multi-scenario smoke check of the paper's headline
        # direction: EMCT* should beat uniform Random overall.
        gen = ScenarioGenerator(5)
        emct_total, random_total = 0.0, 0.0
        for index in range(4):
            scenario = gen.scenario(10, 5, 4, index)
            for trial in range(2):
                for name, bucket in (("emct*", "emct"), ("random", "rand")):
                    platform = scenario.build_platform(trial)
                    sim = MasterSimulator(
                        platform,
                        scenario.app,
                        make_scheduler(name),
                        rng=scenario.scheduler_rng(trial, name),
                    )
                    makespan = sim.run(max_slots=200_000).makespan
                    assert makespan is not None
                    if bucket == "emct":
                        emct_total += makespan
                    else:
                        random_total += makespan
        assert emct_total < random_total

    def test_replication_never_hurts_much_on_small_m(self):
        # Replication is "never detrimental" per the paper; allow a tiny
        # slack for tie-breaking noise on a fixed seed.
        gen = ScenarioGenerator(6)
        scenario = gen.scenario(5, 5, 3, 0)
        makespans = {}
        for replicate in (True, False):
            platform = scenario.build_platform(0)
            sim = MasterSimulator(
                platform,
                scenario.app,
                make_scheduler("emct"),
                options=SimulatorOptions(replication=replicate),
                rng=scenario.scheduler_rng(0, "emct"),
            )
            makespans[replicate] = sim.run(max_slots=200_000).makespan
        assert makespans[True] <= makespans[False] * 1.2


class TestModelMismatch:
    def test_markov_heuristics_run_on_weibull_ground_truth(self):
        # Future-work path: ground truth is non-memoryless, beliefs stay
        # Markov. Everything must still run and complete.
        belief = MarkovAvailabilityModel.from_self_loops(0.95, 0.9, 0.9)
        processors = [
            Processor(
                index=q,
                speed_w=2,
                availability=WeibullSource(
                    shape=0.7, scale=40.0, mean_reclaimed=8.0, mean_down=15.0,
                    p_up_to_reclaimed=0.7, rng=np.random.default_rng(q),
                ),
                belief=belief,
            )
            for q in range(6)
        ]
        platform = Platform(processors, ncom=3)
        app = IterativeApplication(
            tasks_per_iteration=6, iterations=3, t_prog=4, t_data=1
        )
        sim = MasterSimulator(
            platform, app, make_scheduler("emct*"),
            options=SimulatorOptions(audit=True),
            rng=np.random.default_rng(0),
        )
        report = sim.run(max_slots=100_000)
        assert report.makespan is not None


class TestPaperHeuristicSetIntegration:
    def test_dfb_zero_for_some_heuristic_on_every_instance(self, scenario):
        from repro.experiments.dfb import DfbAccumulator

        acc = DfbAccumulator()
        for trial in range(2):
            makespans = {}
            for name in PAPER_HEURISTICS[:6]:
                platform = scenario.build_platform(trial)
                sim = MasterSimulator(
                    platform, scenario.app, make_scheduler(name),
                    rng=scenario.scheduler_rng(trial, name),
                )
                makespans[name] = sim.run(max_slots=200_000).makespan
            result = acc.add_instance((trial,), makespans)
            assert result.winners
        assert acc.instance_count == 2
