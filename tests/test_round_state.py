"""Unit tests for the array-backed RoundState and the batch contract.

Covers the structure-of-arrays context itself (columns, belief caches,
candidate selection, lazy shim), the bit-identity of ``score_batch`` /
``score_one`` against the legacy scalar ``score``, and the determinism fix
for ``SchedulingContext.rng``.  End-to-end simulator equivalence lives in
``tests/test_scheduler_api_equivalence.py``.
"""

import numpy as np
import pytest

from repro.core.expectation import expected_next_up, p_plus
from repro.core.heuristics.base import (
    ProcessorView,
    RoundState,
    SchedulingContext,
    completion_time_batch,
    completion_time_estimate,
    pow_batch,
)
from repro.core.heuristics.lw import LwScheduler
from repro.core.heuristics.mct import EmctScheduler, MctScheduler
from repro.core.heuristics.registry import make_scheduler
from repro.core.heuristics.ud import UdScheduler
from repro.core.markov import paper_random_model
from repro.types import ProcState


def random_views(rng, p=8, with_belief=True, t_data=3):
    """Index-ordered random ProcessorViews resembling mid-run snapshots."""
    views = []
    for q in range(p):
        state = ProcState(int(rng.integers(0, 3)))
        pinned = int(rng.integers(0, 3))
        prog_remaining = int(rng.integers(0, 4))
        pipeline = tuple(
            (int(rng.integers(0, t_data + 1)), int(rng.integers(1, 6)), bool(rng.integers(0, 2)))
            for _ in range(pinned)
        )
        views.append(
            ProcessorView(
                index=q,
                speed_w=int(rng.integers(1, 9)),
                state=state,
                belief=paper_random_model(rng) if with_belief else None,
                has_program=prog_remaining == 0,
                delay=int(rng.integers(0, 40)),
                pinned_count=pinned,
                prog_remaining=prog_remaining,
                pinned_pipeline=pipeline,
            )
        )
    return views


def round_state_from(views, *, seed=5, t_data=3, ncom=4, remaining=6):
    return RoundState.from_views(
        views,
        slot=17,
        t_prog=5,
        t_data=t_data,
        ncom=ncom,
        remaining_tasks=remaining,
        rng=np.random.default_rng(seed),
    )


class TestRoundStateContainer:
    def test_columns_mirror_views(self):
        views = random_views(np.random.default_rng(0))
        rs = round_state_from(views)
        for q, view in enumerate(views):
            assert rs.speed_w[q] == view.speed_w
            assert rs.state[q] == int(view.state)
            assert rs.delay[q] == view.delay
            assert rs.pinned_count[q] == view.pinned_count
            assert bool(rs.has_program[q]) == view.has_program
            assert rs.prog_remaining[q] == view.prog_remaining

    def test_from_views_rejects_unordered(self):
        views = random_views(np.random.default_rng(1))
        with pytest.raises(ValueError, match="index-ordered"):
            round_state_from(list(reversed(views)))

    def test_up_candidates_match_legacy_filter(self):
        views = random_views(np.random.default_rng(2), p=12)
        rs = round_state_from(views)
        expected = [v.index for v in views if v.state == ProcState.UP]
        assert rs.up_candidates().tolist() == expected
        allowed = [1, 3, 5, 7, 9, 11]
        assert rs.up_candidates(allowed).tolist() == [
            q for q in expected if q in allowed
        ]

    def test_belief_columns_match_scalar_functions(self):
        views = random_views(np.random.default_rng(3))
        rs = round_state_from(views)
        for q, view in enumerate(views):
            model = view.belief
            assert rs.belief_column("p_uu")[q] == model.p_uu
            assert rs.belief_column("p_plus")[q] == p_plus(model)
            assert rs.belief_column("pi_u")[q] == model.pi_u
            assert rs.belief_column("pi_d")[q] == model.pi_d
            assert rs.belief_column("e_up")[q] == expected_next_up(model)
            assert rs.belief_column("ud_base")[q] == 1.0 - model.p_ud

    def test_unknown_belief_column_rejected(self):
        rs = round_state_from(random_views(np.random.default_rng(4)))
        with pytest.raises(KeyError, match="unknown belief column"):
            rs.belief_column("nope")

    def test_missing_belief_raises_legacy_error(self):
        views = random_views(np.random.default_rng(5), with_belief=False)
        rs = round_state_from(views)
        assert np.isnan(rs.belief_column("e_up")).all()
        with pytest.raises(ValueError, match="processor 0 has no Markov belief"):
            rs.require_beliefs(np.arange(len(views)), "EMCT needs one")


class TestLazyShim:
    def test_lazy_views_equal_eager_views(self):
        views = random_views(np.random.default_rng(6))
        rs = round_state_from(views)
        ctx = rs.as_context()
        assert len(ctx.processors) == len(views)
        for q, view in enumerate(views):
            assert ctx.processors[q] == view
        assert list(ctx.processors) == views
        assert ctx.processors[-1] == views[-1]
        assert ctx.processors[2:4] == views[2:4]

    def test_context_scalars(self):
        rs = round_state_from(random_views(np.random.default_rng(7)))
        ctx = rs.as_context()
        assert (ctx.slot, ctx.t_prog, ctx.t_data, ctx.ncom) == (17, 5, 3, 4)
        assert ctx.remaining_tasks == 6
        assert ctx.rng is rs.rng
        assert rs.as_context() is ctx  # cached until invalidate
        rs.invalidate()
        assert rs.as_context() is not ctx

    def test_view_cache_invalidated(self):
        rs = round_state_from(random_views(np.random.default_rng(8)))
        before = rs.view(0)
        rs.delay[0] += 11
        rs.invalidate()
        after = rs.view(0)
        assert after.delay == before.delay + 11


class TestBatchScalarBitIdentity:
    """score_batch == score_one == legacy score, bit for bit."""

    # Factories, not instances: these schedulers cache per-processor belief
    # quantities keyed by index, so instances must not be shared between
    # (randomly generated) platforms — the registry contract.
    HEURISTICS = [
        lambda: MctScheduler(contention=False),
        lambda: MctScheduler(contention=True),
        lambda: EmctScheduler(contention=False),
        lambda: EmctScheduler(contention=True),
        lambda: LwScheduler(contention=False),
        lambda: LwScheduler(contention=True),
        lambda: UdScheduler(contention=False),
        lambda: UdScheduler(contention=True),
    ]

    @pytest.mark.parametrize("factory", HEURISTICS, ids=lambda f: f().name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_three_way_identity(self, factory, seed):
        sched = factory()
        rng = np.random.default_rng(100 + seed)
        views = random_views(rng, p=10)
        rs = round_state_from(views)
        ctx = rs.as_context()
        indices = rs.up_candidates()
        if indices.size == 0:
            indices = np.arange(len(views))
        for nq_plus_one in (1, 2, 5):
            for factor in (1, 2, 3):
                batch = sched.score_batch(
                    rs,
                    indices,
                    np.full(indices.size, nq_plus_one, dtype=np.int64),
                    np.full(indices.size, factor, dtype=np.int64),
                )
                for pos, q in enumerate(indices.tolist()):
                    one = sched.score_one(rs, q, nq_plus_one, factor)
                    legacy = sched.score(ctx, views[q], nq_plus_one, factor)
                    assert batch[pos] == one == legacy, (
                        f"{sched.name}: q={q} nq+1={nq_plus_one} f={factor}"
                    )

    @pytest.mark.parametrize("seed", range(4))
    def test_completion_time_batch_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        views = random_views(rng, p=10)
        rs = round_state_from(views)
        indices = np.arange(10)
        nq1 = rng.integers(1, 6, 10)
        factor = rng.integers(1, 4, 10)
        batch = completion_time_batch(rs, indices, nq1, factor)
        for q in range(10):
            assert batch[q] == completion_time_estimate(
                views[q], int(nq1[q]), rs.t_data, contention_factor=int(factor[q])
            )

    def test_pow_batch_matches_python_pow(self):
        rng = np.random.default_rng(9)
        base = rng.uniform(0.0, 1.0, 256)
        expo = rng.uniform(0.0, 400.0, 256)
        out = pow_batch(base, expo)
        for b, e, r in zip(base, expo, out):
            assert r == float(b) ** float(e)


class TestPlaceArrayAgainstLegacyPlace:
    """place_array == place over randomized standalone round states."""

    NAMES = [
        "mct", "mct*", "emct", "emct*", "lw", "lw*", "ud", "ud*",
        "ud-exact", "ud*-exact", "random", "random1", "random2w",
        "random3", "random4w", "passive",
    ]

    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_same_placements(self, name, seed):
        rng = np.random.default_rng(300 + seed)
        views = random_views(rng, p=9)
        n_tasks = int(rng.integers(1, 12))
        # Two independent but identically seeded draw streams so the
        # random heuristics consume identical randomness on both paths.
        rs = round_state_from(views, seed=42)
        legacy_ctx = round_state_from(views, seed=42).as_context()
        array_path = make_scheduler(name).place_array(rs, n_tasks)
        legacy_path = make_scheduler(name).place(legacy_ctx, n_tasks)
        assert array_path == legacy_path

    @pytest.mark.parametrize("name", ["mct", "emct*", "random2w", "passive"])
    def test_same_placements_restricted(self, name):
        rng = np.random.default_rng(77)
        views = random_views(rng, p=9)
        allowed = [0, 2, 4, 6, 8]
        rs = round_state_from(views, seed=13)
        legacy_ctx = round_state_from(views, seed=13).as_context()
        assert make_scheduler(name).place_array(rs, 4, allowed) == make_scheduler(
            name
        ).place(legacy_ctx, 4, allowed)

    def test_no_up_candidates(self):
        views = random_views(np.random.default_rng(11))
        for view in views:
            view.state = ProcState.DOWN
        rs = round_state_from(views)
        assert make_scheduler("emct").place_array(rs, 3) == [None, None, None]

    @pytest.mark.parametrize("name", ["emct", "emct*", "lw", "ud", "random2w"])
    def test_beliefless_processor_outside_candidates_is_tolerated(self, name):
        """Belief checks are candidate-scoped, exactly like the scalar
        loop: a belief-less UP processor outside ``allowed`` must not
        raise, and placements must still match the legacy path."""
        views = random_views(np.random.default_rng(12), p=6)
        views[2].belief = None  # UP but excluded from every call below
        for view in views:
            view.state = ProcState.UP
        allowed = [0, 1, 3, 4, 5]
        rs = round_state_from(views, seed=9)
        legacy_ctx = round_state_from(views, seed=9).as_context()
        for n_tasks in (1, 4):
            assert make_scheduler(name).place_array(
                rs, n_tasks, allowed
            ) == make_scheduler(name).place(legacy_ctx, n_tasks, allowed)

    @pytest.mark.parametrize("name", ["emct", "lw", "ud", "random2w"])
    def test_beliefless_candidate_raises_like_legacy(self, name):
        views = random_views(np.random.default_rng(13), p=4)
        views[1].belief = None
        for view in views:
            view.state = ProcState.UP
        rs = round_state_from(views, seed=9)
        legacy_ctx = round_state_from(views, seed=9).as_context()
        with pytest.raises(ValueError, match="processor 1 has no Markov belief"):
            make_scheduler(name).place(legacy_ctx, 2)
        with pytest.raises(ValueError, match="processor 1 has no Markov belief"):
            make_scheduler(name).place_array(rs, 2)
        # The single-placement fused path must raise identically.
        with pytest.raises(ValueError, match="processor 1 has no Markov belief"):
            make_scheduler(name).place_array(rs, 1, allowed=[1, 2])


class TestSchedulingContextRngDefault:
    """The determinism fix: the default rng is the seeded scheduler stream."""

    def _context(self):
        return SchedulingContext(
            slot=0,
            t_prog=2,
            t_data=1,
            ncom=2,
            processors=random_views(np.random.default_rng(21), p=4),
            remaining_tasks=2,
        )

    def test_default_rng_is_reproducible(self):
        a, b = self._context(), self._context()
        assert a.rng is not b.rng  # independent objects...
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]  # ...same seeded stream

    def test_default_rng_matches_simulator_fallback(self):
        from repro.rng import default_scheduler_rng

        assert self._context().rng.random() == default_scheduler_rng().random()
