"""Tests for the event log and the simulation report."""

from repro.sim.events import EventKind, EventLog, SimEvent
from repro.sim.metrics import SimulationReport


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        log = EventLog(enabled=False)
        log.emit(SimEvent(0, EventKind.TASK_COMMIT))
        assert log.events == []

    def test_enabled_log_records_in_order(self):
        log = EventLog()
        log.emit(SimEvent(0, EventKind.COMPUTE_START, worker=1))
        log.emit(SimEvent(1, EventKind.TASK_COMMIT, worker=1))
        assert [e.kind for e in log.events] == [
            EventKind.COMPUTE_START, EventKind.TASK_COMMIT,
        ]

    def test_of_kind_and_for_worker(self):
        log = EventLog()
        log.emit(SimEvent(0, EventKind.COMPUTE_START, worker=1))
        log.emit(SimEvent(1, EventKind.COMPUTE_START, worker=2))
        log.emit(SimEvent(2, EventKind.TASK_COMMIT, worker=1))
        assert len(log.of_kind(EventKind.COMPUTE_START)) == 2
        assert len(log.for_worker(1)) == 2

    def test_str_rendering(self):
        event = SimEvent(
            12, EventKind.TASK_COMMIT, worker=3, iteration=1, task_id=4,
            replica_id=2, detail="note",
        )
        text = str(event)
        assert "task_commit" in text
        assert "P3" in text
        assert "task4/r2" in text
        assert "note" in text

    def test_render_multiline(self):
        log = EventLog()
        log.emit(SimEvent(0, EventKind.RUN_DONE))
        log.emit(SimEvent(1, EventKind.RUN_DONE))
        assert len(log.render().splitlines()) == 2


class TestSimulationReport:
    def test_finished_flag(self):
        report = SimulationReport(completed_iterations=2, target_iterations=2)
        assert report.finished
        report2 = SimulationReport(completed_iterations=1, target_iterations=2)
        assert not report2.finished

    def test_iteration_durations(self):
        report = SimulationReport(iteration_end_slots=[4, 6, 11])
        assert report.iteration_durations == [5, 2, 5]

    def test_waste_fraction(self):
        report = SimulationReport(
            compute_slots_spent=10, compute_slots_wasted=3
        )
        assert report.waste_fraction == 0.3

    def test_waste_fraction_zero_denominator(self):
        assert SimulationReport().waste_fraction == 0.0

    def test_summary_with_and_without_makespan(self):
        done = SimulationReport(
            completed_iterations=10, target_iterations=10, makespan=120,
            heuristic_name="emct",
        )
        assert "makespan 120" in done.summary()
        partial = SimulationReport(
            completed_iterations=3, target_iterations=10, slots_simulated=99
        )
        assert "within 99 slots" in partial.summary()
