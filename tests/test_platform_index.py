"""Calendar-vs-sweep platform-index equivalence (DESIGN.md §12).

``SimulatorOptions.platform_index`` selects how the simulator tracks
platform availability: ``"sweep"`` re-reads all ``p`` processor states at
every span boundary (the original engine, kept as the oracle), while
``"calendar"`` pops only the processors whose run actually ended from a
platform-wide event calendar.  The two must be *bit-identical* — same
reports, same event logs, same network audit trails — across the whole
heuristic registry, both objectives, both step modes, and every option
variant; this module is the contract.

The scaling class at the bottom checks the point of the refactor: the
calendar's per-boundary work follows the platform's churn, not its size.
"""

from __future__ import annotations

import pytest

from repro.core.heuristics.registry import available_heuristics, make_scheduler
from repro.sim.events import EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.workload.scenarios import ScenarioGenerator

# The paper's heuristic registry plus the clairvoyant baseline (which
# needs the platform handle and is therefore not in the plain listing).
FULL_REGISTRY = available_heuristics() + ["clairvoyant"]


def _scenario(p=150, n=10, ncom=4, wmin=5, sojourn=60, iterations=2,
              seed=7421):
    """A large-grid scenario small enough for the test matrix.

    ``p`` stays above the vectorisation threshold (128) so these runs
    exercise the large-platform scheduler paths, not just the scalar
    ones.
    """
    gen = ScenarioGenerator(seed, p=p, iterations=iterations)
    return gen.large_grid_scenario(n, ncom, wmin, 0, mean_sojourn=sojourn)


def run_one(sc, heuristic, platform_index, *, objective="run", budget=500,
            with_log=True, **options_kwargs):
    """One simulation under one platform index; return its identity tuple.

    The identity tuple is everything the acceptance contract compares:
    the report, the event log, and the per-processor network audit.  The
    simulator itself rides along for op-count inspection.
    """
    platform = sc.build_platform(0)
    log = EventLog(enabled=with_log)
    sim = MasterSimulator(
        platform,
        sc.app,
        make_scheduler(heuristic, platform=platform),
        options=SimulatorOptions(platform_index=platform_index,
                                 **options_kwargs),
        rng=sc.scheduler_rng(0, heuristic),
        log=log,
    )
    if objective == "run":
        report = sim.run(max_slots=budget)
    else:
        report = sim.run_slots(budget)
    return report, log.events, sim.network.usage, sim


def assert_identical(sc, heuristic, *, objective="run", budget=500, **kw):
    """Run both indexes on identical inputs and compare the tuples."""
    sweep = run_one(sc, heuristic, "sweep", objective=objective,
                    budget=budget, **kw)
    cal = run_one(sc, heuristic, "calendar", objective=objective,
                  budget=budget, **kw)
    assert cal[0] == sweep[0], f"report diverged ({heuristic})"
    assert cal[1] == sweep[1], f"event log diverged ({heuristic})"
    assert cal[2] == sweep[2], f"network audit diverged ({heuristic})"
    return sweep, cal


class TestRegistryEquivalence:
    """Full registry × both objectives × both step modes."""

    @pytest.mark.parametrize("heuristic", FULL_REGISTRY)
    @pytest.mark.parametrize("objective,step_mode", [
        ("run", "span"),
        ("run", "slot"),
        ("slots", "span"),
        ("slots", "slot"),
    ])
    def test_identical(self, heuristic, objective, step_mode):
        sc = _scenario()
        # The clairvoyant walker pays a ground-truth peek per score; a
        # shorter horizon keeps its four cells proportionate.
        budget = 250 if heuristic == "clairvoyant" else 500
        assert_identical(sc, heuristic, objective=objective, budget=budget,
                         step_mode=step_mode)


class TestOptionVariants:
    """Every option axis that reroutes the engine's hot paths."""

    @pytest.mark.parametrize("options_kwargs", [
        {"audit": True},
        {"proactive": True},
        {"replication": False},
        {"round_relevance": "off"},
        {"scheduler_api": "legacy"},
        {"instance_store": "legacy"},
        {"replan_policy": "sticky"},
        {"replan_policy": "debounce:3"},
        {"replan_policy": "relevant-up"},
        {"replan_policy": "every-slot"},
    ], ids=lambda kw: "-".join(f"{k}={v}" for k, v in kw.items()))
    @pytest.mark.parametrize("heuristic", ["emct*", "random2w"])
    def test_identical(self, heuristic, options_kwargs):
        sc = _scenario()
        assert_identical(sc, heuristic, budget=400, **options_kwargs)

    def test_identical_without_log(self):
        # The disabled log changes which hooks fire, not the results.
        sc = _scenario()
        assert_identical(sc, "mct", budget=400, with_log=False)


class TestCompletion:
    """At least one configuration must genuinely finish its iterations.

    Truncated-horizon identity is necessary but not sufficient: a
    completing run exercises makespan finalisation on both arms.
    """

    def test_completes_identically(self):
        sc = _scenario()
        sweep, cal = assert_identical(sc, "emct*", budget=900)
        assert sweep[0].makespan is not None
        assert cal[0].makespan == sweep[0].makespan


class TestResume:
    """begin_run / advance_until pausing must not disturb the calendar."""

    def test_paused_run_matches_plain_run(self):
        sc = _scenario()
        plain = run_one(sc, "mct", "calendar", budget=500)

        platform = sc.build_platform(0)
        log = EventLog(enabled=True)
        sim = MasterSimulator(
            platform,
            sc.app,
            make_scheduler("mct", platform=platform),
            options=SimulatorOptions(platform_index="calendar"),
            rng=sc.scheduler_rng(0, "mct"),
            log=log,
        )
        sim.begin_run(max_slots=500)
        limit = 25
        while not sim.advance_until(limit):
            limit += 25
        report = sim.finish_run()
        assert report == plain[0]
        assert log.events == plain[1]
        assert sim.network.usage == plain[2]


class TestChurnScaling:
    """The calendar's boundary work scales with churn, not platform size."""

    def _counts(self, platform_index, p=400):
        sc = _scenario(p=p)
        _, _, _, sim = run_one(sc, "mct", platform_index, budget=600,
                               replan_policy="sticky")
        return sim.op_counts, p

    def test_sweep_touches_everyone(self):
        counts, p = self._counts("sweep")
        boundaries = counts["boundaries"]
        assert boundaries > 0
        # The oracle's cost model: every boundary re-reads all p states.
        assert counts["boundary_workers_touched"] == boundaries * p
        assert counts["calendar_pops"] == 0

    def test_calendar_touches_churn(self):
        counts, p = self._counts("calendar")
        boundaries = counts["boundaries"]
        assert boundaries > 0
        touched_per_boundary = counts["boundary_workers_touched"] / boundaries
        # With mean sojourns ~60 slots, expected churn per slot is a few
        # percent of p; an order of magnitude under p is a loose bound
        # that still fails instantly if anyone reintroduces a full sweep.
        assert touched_per_boundary < p / 10
        assert counts["calendar_pops"] < boundaries * p / 10

    def test_score_rows_are_reused(self):
        counts, _ = self._counts("calendar")
        # The stamp store must serve most lookups after warm-up.
        assert counts["rows_reused"] > counts["rows_scored"]
