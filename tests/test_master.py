"""Golden tests for the master simulator on hand-computable scenarios.

Every expected makespan below was derived by hand from the model rules
(DESIGN.md §3): program then data then compute, transfers/compute only on
UP slots, compute starts the slot after its data completes, prefetch
overlaps computation, RECLAIMED freezes, DOWN wipes.
"""

import numpy as np
import pytest

from repro.core.heuristics.mct import MctScheduler
from repro.sim.events import EventKind, EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions, simulate
from repro.sim.platform import Platform, Processor
from repro.types import states_from_codes
from repro.workload.application import IterativeApplication


def trace_platform(codes_list, speeds, ncom=1):
    processors = [
        Processor.from_trace(q, speeds[q], states_from_codes(codes))
        for q, codes in enumerate(codes_list)
    ]
    return Platform(processors, ncom=ncom)


def run(platform, app, *, scheduler=None, options=None, log=None, max_slots=500):
    sim = MasterSimulator(
        platform,
        app,
        scheduler or MctScheduler(),
        options=options or SimulatorOptions(audit=True),
        rng=np.random.default_rng(0),
        log=log,
    )
    return sim.run(max_slots=max_slots)


class TestSingleWorkerTimelines:
    def test_one_task_sequential_pipeline(self):
        # Tprog + Tdata + w = 3 + 2 + 2 = 7 slots.
        report = run(
            trace_platform(["u" * 50], [2]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=3, t_data=2),
        )
        assert report.makespan == 7
        assert report.tasks_committed == 1

    def test_two_tasks_overlap_data_with_compute(self):
        # Second task's data prefetches during the first compute:
        # 3 + 2 + 2 + max(2, 2) = 9 slots.
        report = run(
            trace_platform(["u" * 50], [2]),
            IterativeApplication(tasks_per_iteration=2, iterations=1,
                                 t_prog=3, t_data=2),
        )
        assert report.makespan == 9

    def test_compute_bound_pipeline(self):
        # w > Tdata: 2 + 1 + 4 + 4 + 4 = 15 slots for three tasks.
        report = run(
            trace_platform(["u" * 50], [4]),
            IterativeApplication(tasks_per_iteration=3, iterations=1,
                                 t_prog=2, t_data=1),
        )
        assert report.makespan == 15

    def test_comm_bound_pipeline(self):
        # Tdata > w: 2 + 3 + 1 + (3 + 1 is pipelined to max=3) -> 2+3+1+3+1=...
        # Timeline: prog 0-1, data1 2-4, comp1 5, data2 5-7, comp2 8,
        # data3 8-10, comp3 11 -> makespan 12.
        report = run(
            trace_platform(["u" * 50], [1]),
            IterativeApplication(tasks_per_iteration=3, iterations=1,
                                 t_prog=2, t_data=3),
        )
        assert report.makespan == 12

    def test_zero_t_data(self):
        # Tdata = 0: tasks need no channel; 2 + 3×1 = 5 slots.
        report = run(
            trace_platform(["u" * 50], [1]),
            IterativeApplication(tasks_per_iteration=3, iterations=1,
                                 t_prog=2, t_data=0),
        )
        assert report.makespan == 5

    def test_reclaimed_pause_delays_completion(self):
        # prog 0-1, slot 2 reclaimed (nothing), compute slot 3 -> makespan 4.
        report = run(
            trace_platform(["uuru" + "u" * 30], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=2, t_data=0),
        )
        assert report.makespan == 4

    def test_down_wipes_program(self):
        # prog 0-1 received, DOWN at 2 wipes it; re-sent 3-4; compute 5.
        report = run(
            trace_platform(["uud" + "u" * 30], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=2, t_data=0),
        )
        assert report.makespan == 6
        assert report.instances_lost_to_crash == 1
        assert report.comm_slots_wasted >= 2  # the lost program transfer


class TestIterations:
    def test_program_survives_iteration_boundary(self):
        # It1: prog 0-2, data 3, comp 4. It2: data 5, comp 6 -> makespan 7.
        report = run(
            trace_platform(["u" * 50], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=2,
                                 t_prog=3, t_data=1),
        )
        assert report.makespan == 7
        assert report.completed_iterations == 2
        assert report.iteration_end_slots == [4, 6]

    def test_iteration_durations(self):
        report = run(
            trace_platform(["u" * 50], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=2,
                                 t_prog=3, t_data=1),
        )
        assert report.iteration_durations == [5, 2]

    def test_makespan_monotone_in_iterations(self):
        def makespan(iterations):
            return run(
                trace_platform(["u" * 200], [2]),
                IterativeApplication(tasks_per_iteration=2,
                                     iterations=iterations,
                                     t_prog=2, t_data=1),
            ).makespan

        values = [makespan(i) for i in (1, 2, 3, 4)]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestDynamicReassignment:
    def test_task_migrates_to_freed_fast_worker(self):
        # Two workers, ncom=1, Tprog=2, Tdata=0, w=1, m=2.  P0 serves
        # first; after its commit the second task migrates back to P0
        # (which holds the program) instead of waiting for P1's program.
        log = EventLog()
        report = run(
            trace_platform(["u" * 30, "u" * 30], [1, 1], ncom=1),
            IterativeApplication(tasks_per_iteration=2, iterations=1,
                                 t_prog=2, t_data=0),
            log=log,
        )
        assert report.makespan == 4
        commits = log.of_kind(EventKind.TASK_COMMIT)
        # Both tasks are committed by P0 (replicas may also have run on P1).
        original_commits = [e for e in commits if not e.replica_id]
        assert {e.worker for e in original_commits} == {0}

    def test_replication_kicks_in_when_up_exceeds_tasks(self):
        # One task, two UP workers: the idle one receives a replica.
        report = run(
            trace_platform(["u" * 30, "u" * 30], [5, 1], ncom=2),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=1, t_data=1),
        )
        assert report.replicas_launched >= 1
        assert report.tasks_committed == 1

    def test_replication_disabled(self):
        report = run(
            trace_platform(["u" * 30, "u" * 30], [5, 1], ncom=2),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=1, t_data=1),
            options=SimulatorOptions(replication=False, audit=True),
        )
        assert report.replicas_launched == 0

    def test_replica_saves_makespan_when_original_stalls(self):
        # P0 is fast but gets reclaimed forever after slot 1 (before it can
        # compute); P1 is slow but UP throughout.  With replication the
        # replica on P1 commits; without it the run stalls.
        app = IterativeApplication(tasks_per_iteration=1, iterations=1,
                                   t_prog=1, t_data=1)
        stalled = trace_platform(["uu" + "r" * 62, "u" * 64], [1, 8], ncom=2)
        with_rep = run(stalled, app,
                       options=SimulatorOptions(replication=True, audit=True),
                       max_slots=64)
        assert with_rep.makespan == 10  # P1: prog 0, data 1, compute 2-9
        stalled2 = trace_platform(["uu" + "r" * 62, "u" * 64], [1, 8], ncom=2)
        without = run(stalled2, app,
                      options=SimulatorOptions(replication=False, audit=True),
                      max_slots=64)
        assert without.makespan is None  # original stuck on reclaimed P0


class TestRunSlots:
    def test_counts_iterations_within_budget(self):
        report = MasterSimulator(
            trace_platform(["u" * 100], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=50,
                                 t_prog=2, t_data=1),
            MctScheduler(),
            options=SimulatorOptions(audit=True),
        ).run_slots(10)
        # prog 0-1 then per iteration data+compute = 2 slots: slots 2..9 -> 4.
        assert report.completed_iterations == 4
        assert report.makespan is None
        assert report.slots_simulated == 10

    def test_stops_early_when_target_reached(self):
        report = MasterSimulator(
            trace_platform(["u" * 100], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=1, t_data=0),
            MctScheduler(),
        ).run_slots(50)
        assert report.makespan == 2
        assert report.slots_simulated == 2


class TestAccounting:
    def test_compute_slots_spent(self):
        report = run(
            trace_platform(["u" * 50], [3]),
            IterativeApplication(tasks_per_iteration=2, iterations=1,
                                 t_prog=1, t_data=1),
        )
        assert report.compute_slots_spent == 6  # 2 tasks × w=3

    def test_comm_slots_spent(self):
        report = run(
            trace_platform(["u" * 50], [3]),
            IterativeApplication(tasks_per_iteration=2, iterations=1,
                                 t_prog=1, t_data=2),
        )
        assert report.comm_slots_spent == 1 + 2 * 2  # prog + 2 × data

    def test_no_waste_on_clean_run(self):
        report = run(
            trace_platform(["u" * 50], [2]),
            IterativeApplication(tasks_per_iteration=2, iterations=1,
                                 t_prog=1, t_data=1),
        )
        assert report.compute_slots_wasted == 0
        assert report.waste_fraction == 0.0

    def test_summary_mentions_heuristic(self):
        report = run(
            trace_platform(["u" * 50], [2]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=1, t_data=1),
        )
        assert "mct" in report.summary()


class TestEventLog:
    def test_event_sequence_for_simple_run(self):
        log = EventLog()
        run(
            trace_platform(["u" * 50], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=2, t_data=1),
            log=log,
        )
        kinds = [e.kind for e in log.events]
        assert kinds == [
            EventKind.PROGRAM_TRANSFER_START,
            EventKind.PROGRAM_TRANSFER_DONE,
            EventKind.DATA_TRANSFER_START,
            EventKind.DATA_TRANSFER_DONE,
            EventKind.COMPUTE_START,
            EventKind.TASK_COMMIT,
            EventKind.ITERATION_DONE,
            EventKind.RUN_DONE,
        ]

    def test_program_transfer_slots(self):
        log = EventLog()
        run(
            trace_platform(["u" * 50], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=3, t_data=0),
            log=log,
        )
        start = log.of_kind(EventKind.PROGRAM_TRANSFER_START)[0]
        done = log.of_kind(EventKind.PROGRAM_TRANSFER_DONE)[0]
        assert start.slot == 0
        assert done.slot == 2

    def test_state_change_logged(self):
        log = EventLog()
        run(
            trace_platform(["uru" + "u" * 30], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=1, t_data=0),
            log=log,
        )
        changes = log.of_kind(EventKind.PROC_STATE_CHANGE)
        assert changes and changes[0].detail == "u->r"


class TestGuards:
    def test_unfinishable_run_returns_none_makespan(self):
        report = run(
            trace_platform(["rrrr"], [1]),  # never UP (pads DOWN after)
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=1, t_data=0),
            max_slots=20,
        )
        assert report.makespan is None
        assert report.completed_iterations == 0

    def test_simulate_wrapper(self):
        report = simulate(
            trace_platform(["u" * 20], [1]),
            IterativeApplication(tasks_per_iteration=1, iterations=1,
                                 t_prog=1, t_data=0),
            MctScheduler(),
            max_slots=20,
        )
        assert report.makespan == 2

    def test_rejects_bad_max_slots(self):
        with pytest.raises(ValueError):
            run(
                trace_platform(["u" * 20], [1]),
                IterativeApplication(tasks_per_iteration=1, iterations=1,
                                     t_prog=1, t_data=0),
                max_slots=0,
            )
