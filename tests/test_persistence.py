"""Tests for campaign persistence (save / load / rebuild / merge)."""

import pytest

from repro.experiments.harness import CampaignConfig, run_campaign
from repro.experiments.persistence import (
    load_records,
    merge_records,
    rebuild_result,
    save_campaign,
)
from repro.workload.scenarios import ScenarioGenerator


@pytest.fixture(scope="module")
def campaign():
    scenarios = [ScenarioGenerator(3).scenario(5, 5, 1, i) for i in range(2)]
    return run_campaign(
        scenarios, CampaignConfig(heuristics=("mct", "random"), trials=2)
    )


class TestSaveLoad:
    def test_round_trip(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path, meta={"seed": 3})
        records, meta = load_records(path)
        assert meta == {"seed": 3}
        assert len(records) == campaign.instances
        assert records == campaign.records

    def test_save_without_records_rejected(self, tmp_path):
        from repro.experiments.harness import CampaignResult

        with pytest.raises(ValueError, match="no instance records"):
            save_campaign(CampaignResult(), tmp_path / "x.json")

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope", "records": []}')
        with pytest.raises(ValueError, match="unsupported campaign format"):
            load_records(path)

    def test_load_rejects_empty_makespans(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "repro-campaign-v1", "records": '
            '[{"key": [1], "makespans": {}}]}'
        )
        with pytest.raises(ValueError, match="no makespans"):
            load_records(path)


class TestRebuild:
    def test_rebuild_matches_original_aggregates(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        records, _meta = load_records(path)
        rebuilt = rebuild_result(records)
        assert rebuilt.instances == campaign.instances
        for name in ("mct", "random"):
            assert rebuilt.accumulator.average_dfb(name) == pytest.approx(
                campaign.accumulator.average_dfb(name)
            )
            assert rebuilt.accumulator.wins(name) == campaign.accumulator.wins(name)
        assert set(rebuilt.per_scenario) == set(campaign.per_scenario)


class TestMerge:
    def test_merge_disjoint(self, campaign):
        half = len(campaign.records) // 2
        merged = merge_records(campaign.records[:half], campaign.records[half:])
        assert len(merged) == len(campaign.records)

    def test_merge_overlapping_consistent(self, campaign):
        merged = merge_records(campaign.records, campaign.records)
        assert len(merged) == len(campaign.records)

    def test_merge_conflicting_rejected(self, campaign):
        key, makespans = campaign.records[0]
        altered = [(key, {name: value + 1 for name, value in makespans.items()})]
        with pytest.raises(ValueError, match="conflicting results"):
            merge_records(campaign.records, altered)
