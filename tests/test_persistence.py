"""Tests for campaign persistence (save / load / rebuild / merge / shards)."""

import json

import pytest

from repro.experiments.harness import CampaignConfig, run_campaign
from repro.experiments.persistence import (
    CampaignCheckpoint,
    ShardedCheckpoint,
    discover_shards,
    load_records,
    merge_records,
    read_journal_entries,
    rebuild_result,
    save_campaign,
)
from repro.workload.scenarios import ScenarioGenerator


@pytest.fixture(scope="module")
def scenarios():
    return [ScenarioGenerator(3).scenario(5, 5, 1, i) for i in range(2)]


@pytest.fixture(scope="module")
def campaign(scenarios):
    return run_campaign(
        scenarios, CampaignConfig(heuristics=("mct", "random"), trials=2)
    )


class TestSaveLoad:
    def test_round_trip(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path, meta={"seed": 3})
        records, meta = load_records(path)
        assert meta == {"seed": 3}
        assert len(records) == campaign.instances
        assert records == campaign.records

    def test_save_without_records_rejected(self, tmp_path):
        from repro.experiments.harness import CampaignResult

        with pytest.raises(ValueError, match="no instance records"):
            save_campaign(CampaignResult(), tmp_path / "x.json")

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope", "records": []}')
        with pytest.raises(ValueError, match="unsupported campaign format"):
            load_records(path)

    def test_load_rejects_empty_makespans(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "repro-campaign-v1", "records": '
            '[{"key": [1], "makespans": {}}]}'
        )
        with pytest.raises(ValueError, match="no makespans"):
            load_records(path)


class TestRebuild:
    def test_rebuild_matches_original_aggregates(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(campaign, path)
        records, _meta = load_records(path)
        rebuilt = rebuild_result(records)
        assert rebuilt.instances == campaign.instances
        for name in ("mct", "random"):
            assert rebuilt.accumulator.average_dfb(name) == pytest.approx(
                campaign.accumulator.average_dfb(name)
            )
            assert rebuilt.accumulator.wins(name) == campaign.accumulator.wins(name)
        assert set(rebuilt.per_scenario) == set(campaign.per_scenario)


class TestMerge:
    def test_merge_disjoint(self, campaign):
        half = len(campaign.records) // 2
        merged = merge_records(campaign.records[:half], campaign.records[half:])
        assert len(merged) == len(campaign.records)

    def test_merge_overlapping_consistent(self, campaign):
        merged = merge_records(campaign.records, campaign.records)
        assert len(merged) == len(campaign.records)

    def test_merge_conflicting_rejected(self, campaign):
        key, makespans = campaign.records[0]
        altered = [(key, {name: value + 1 for name, value in makespans.items()})]
        with pytest.raises(ValueError, match="conflicting results"):
            merge_records(campaign.records, altered)


class TestJournalExtras:
    def test_extra_fields_round_trip_raw_but_not_in_load(self, tmp_path, campaign):
        path = tmp_path / "extras.ckpt"
        journal = CampaignCheckpoint(path)
        key, makespans = campaign.records[0]
        journal.append(key, makespans, (), extra={"worker": "w0", "t": 12.5})
        # The resume view ignores provenance…
        assert journal.load() == {key: (makespans, [])}
        # …but the observability view keeps it.
        (entry,) = read_journal_entries(path)
        assert entry["worker"] == "w0"
        assert entry["t"] == 12.5

    def test_extra_shadowing_reserved_key_rejected(self, tmp_path, campaign):
        journal = CampaignCheckpoint(tmp_path / "clash.ckpt")
        key, makespans = campaign.records[0]
        with pytest.raises(ValueError, match="reserved"):
            journal.append(key, makespans, (), extra={"makespans": {}})

    def test_read_entries_tolerates_absent_and_torn(self, tmp_path):
        assert read_journal_entries(tmp_path / "absent") == []
        torn = tmp_path / "torn"
        torn.write_text('{"form')  # torn header
        assert read_journal_entries(torn) == []
        foreign = tmp_path / "foreign"
        foreign.write_text('{"format": "something-else"}\n{"key": [1]}\n')
        assert read_journal_entries(foreign) == []


class TestShardedCheckpoint:
    def test_append_routes_and_load_merges(self, tmp_path, campaign):
        sharded = ShardedCheckpoint(tmp_path / "camp.ckpt", shards=3)
        for key, makespans in campaign.records:
            sharded.append(key, makespans, ())
        loaded = sharded.load()
        assert set(loaded) == {key for key, _ in campaign.records}
        # More than one shard actually received entries.
        assert len(sharded.existing_paths()) > 1
        per_shard = sum(
            len(read_journal_entries(p)) for p in sharded.existing_paths()
        )
        assert per_shard == len(campaign.records)

    def test_routing_is_stable_across_instances(self, tmp_path, campaign):
        a = ShardedCheckpoint(tmp_path / "camp.ckpt", shards=4)
        b = ShardedCheckpoint(tmp_path / "camp.ckpt", shards=4)
        for key, _ in campaign.records:
            assert a._route(key).path == b._route(key).path

    def test_resume_appends_to_original_shard(self, tmp_path, campaign):
        base = tmp_path / "camp.ckpt"
        key, makespans = campaign.records[0]
        ShardedCheckpoint(base, shards=4).append(key, makespans, ())
        before = discover_shards(base)
        # A "restarted coordinator" re-appending the same unit lands in
        # the same file — every shard stays individually append-only.
        ShardedCheckpoint(base, shards=4).append(key, makespans, ())
        assert discover_shards(base) == before
        (path,) = before
        assert len(read_journal_entries(path)) == 2

    def test_shard_count_change_still_loads_everything(self, tmp_path, campaign):
        base = tmp_path / "camp.ckpt"
        writer = ShardedCheckpoint(base, shards=2)
        for key, makespans in campaign.records:
            writer.append(key, makespans, ())
        # load() scans *existing* files, not the configured range.
        reloaded = ShardedCheckpoint(base, shards=5).load()
        assert set(reloaded) == {key for key, _ in campaign.records}

    def test_overlapping_consistent_shards_merge(self, tmp_path, campaign):
        base = tmp_path / "camp.ckpt"
        sharded = ShardedCheckpoint(base, shards=2)
        key, makespans = campaign.records[0]
        # The same unit journalled in two shards (a shard-count change
        # re-routed it) is fine as long as the entries agree.
        sharded.shard(0).append(key, makespans, ())
        sharded.shard(1).append(key, makespans, ())
        assert sharded.load() == {key: (makespans, [])}

    def test_conflicting_shards_rejected(self, tmp_path, campaign):
        base = tmp_path / "camp.ckpt"
        sharded = ShardedCheckpoint(base, shards=2)
        key, makespans = campaign.records[0]
        altered = {name: value + 1 for name, value in makespans.items()}
        sharded.shard(0).append(key, makespans, ())
        sharded.shard(1).append(key, altered, ())
        with pytest.raises(ValueError, match="disagree"):
            sharded.load()

    def test_two_torn_headers_healed_then_merged(self, tmp_path, campaign):
        # Both shard journals were killed inside their very first append:
        # each holds only a torn header.  Loading treats both as empty,
        # appending heals each in place, and the merged view is whole.
        base = tmp_path / "camp.ckpt"
        sharded = ShardedCheckpoint(base, shards=2)
        sharded.shard_path(0).write_text('{"forma')
        sharded.shard_path(1).write_text('{"f')
        assert sharded.load() == {}
        (key0, ms0), (key1, ms1) = campaign.records[:2]
        sharded.shard(0).append(key0, ms0, ())
        sharded.shard(1).append(key1, ms1, ())
        healed = ShardedCheckpoint(base, shards=2).load()
        assert healed == {key0: (ms0, []), key1: (ms1, [])}
        for path in discover_shards(base):
            header = json.loads(path.read_text().splitlines()[0])
            assert header["format"] == "repro-checkpoint-v1"

    def test_torn_tail_drops_only_that_entry(self, tmp_path, campaign):
        from repro.experiments.distributed import tear_journal

        base = tmp_path / "camp.ckpt"
        sharded = ShardedCheckpoint(base, shards=1)
        for key, makespans in campaign.records:
            sharded.append(key, makespans, ())
        tear_journal(sharded.shard_path(0))
        assert len(sharded.load()) == len(campaign.records) - 1

    def test_meta_mismatch_rejected(self, tmp_path, campaign):
        base = tmp_path / "camp.ckpt"
        key, makespans = campaign.records[0]
        ShardedCheckpoint(base, shards=2, meta={"digest": "a"}).append(
            key, makespans, ()
        )
        with pytest.raises(ValueError, match="different campaign"):
            ShardedCheckpoint(base, shards=2, meta={"digest": "b"}).load()

    def test_bad_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ShardedCheckpoint(tmp_path / "x", shards=0)

    def test_discover_excludes_tmp_and_sorts(self, tmp_path):
        base = tmp_path / "camp.ckpt"
        for name in ("camp.ckpt.shard-02", "camp.ckpt.shard-00",
                     "camp.ckpt.shard-01.tmp"):
            (tmp_path / name).write_text("")
        found = discover_shards(base)
        assert [p.name for p in found] == [
            "camp.ckpt.shard-00", "camp.ckpt.shard-02"
        ]
        # Directory form finds the same files.
        assert discover_shards(tmp_path) == found


class TestShardedResume:
    """No ordering drift: resumed statistics are bit-identical, CIs included."""

    def test_run_campaign_accepts_sharded_journal(
        self, tmp_path, scenarios, campaign
    ):
        config = CampaignConfig(heuristics=("mct", "random"), trials=2)
        journal = ShardedCheckpoint(tmp_path / "camp.ckpt", shards=3)
        first = run_campaign(scenarios, config, checkpoint=journal)
        assert first == campaign
        assert len(journal.load()) == campaign.instances
        # Second run restores everything — zero simulation.
        executed = []
        resumed = run_campaign(
            scenarios,
            config,
            checkpoint=ShardedCheckpoint(tmp_path / "camp.ckpt", shards=3),
            progress=lambda done, key: executed.append(key),
        )
        assert resumed == campaign

    def test_scrambled_shard_layout_cannot_drift_statistics(
        self, tmp_path, scenarios, campaign
    ):
        # Rewrite the journals adversarially — all entries crammed into
        # one shard, in *reverse* completion order, plus a second shard
        # overlapping half of them — and resume.  The harness folds
        # restored units in campaign order (never journal order), so
        # every statistic, including the order-sensitive bootstrap CI,
        # must come out bit-identical.
        config = CampaignConfig(heuristics=("mct", "random"), trials=2)
        base = tmp_path / "camp.ckpt"
        run_campaign(
            scenarios, config, checkpoint=ShardedCheckpoint(base, shards=3)
        )
        entries = []
        for path in discover_shards(base):
            entries.extend(read_journal_entries(path))
            path.unlink()
        assert len(entries) == campaign.instances
        scrambled = ShardedCheckpoint(base, shards=2)
        for entry in reversed(entries):
            scrambled.shard(0).append(
                tuple(entry["key"]), entry["makespans"], entry["truncated"]
            )
        for entry in entries[: len(entries) // 2]:
            scrambled.shard(1).append(
                tuple(entry["key"]), entry["makespans"], entry["truncated"]
            )
        resumed = run_campaign(
            scenarios, config, checkpoint=ShardedCheckpoint(base, shards=2)
        )
        assert resumed == campaign
        assert resumed.records == campaign.records  # exact order, exact bits
        for name in ("mct", "random"):
            assert resumed.accumulator.average_dfb_ci(
                name
            ) == campaign.accumulator.average_dfb_ci(name)
