"""Tests for the theorem2 validation study and the ablation module."""

import pytest

from repro.experiments.ablation import ABLATIONS, render_ablation, run_ablation
from repro.experiments.theorem2_study import (
    render_theorem2_study,
    run_theorem2_study,
)


class TestTheorem2Study:
    @pytest.fixture(scope="class")
    def result(self):
        return run_theorem2_study(chains=3, samples=4000, workload=5, seed=1)

    def test_all_quantities_validated(self, result):
        names = [v.quantity for v in result.validations]
        assert any("Lemma 1" in n for n in names)
        assert any("Theorem 2" in n for n in names)
        assert any("matrix power" in n for n in names)
        assert any("rank-1" in n for n in names)

    def test_closed_forms_match_monte_carlo(self, result):
        for validation in result.validations:
            if "rank-1" in validation.quantity:
                continue  # genuine approximation, not statistical noise
            assert validation.max_abs_error < 0.05, validation

    def test_errors_ordered(self, result):
        for validation in result.validations:
            assert 0 <= validation.mean_abs_error <= validation.max_abs_error

    def test_render(self, result):
        text = render_theorem2_study(result)
        assert "Monte Carlo" in text
        assert "mean |err|" in text


class TestAblation:
    def test_registry_contents(self):
        assert set(ABLATIONS) == {
            "replication", "replanning", "ud-exact", "contention", "proactive",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="valid:"):
            run_ablation("nonsense")

    def test_replanning_ablation_quick(self):
        result = run_ablation(
            "replanning", scenarios=1, trials=1, wmin=2, n=5
        )
        assert set(result.arms) == {"event-driven", "every-slot"}
        event_rounds = result.arms["event-driven"][1]
        slot_rounds = result.arms["every-slot"][1]
        assert event_rounds < slot_rounds
        text = render_ablation(result)
        assert "replanning" in text

    def test_replication_ablation_quick(self):
        result = run_ablation(
            "replication", scenarios=1, trials=1, wmin=2, n=5
        )
        assert set(result.arms) == {
            "0 extra replicas", "1 extra replicas", "2 extra replicas",
        }
        for mean, _rounds in result.arms.values():
            assert mean > 0

    def test_proactive_ablation_quick(self):
        result = run_ablation(
            "proactive", scenarios=1, trials=1, wmin=2, n=5
        )
        assert set(result.arms) == {"dynamic", "proactive"}


class TestCliStudies:
    def test_theorem2_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["theorem2", "--chains", "2", "--samples", "2000"]) == 0
        assert "Theorem 2" in capsys.readouterr().out

    def test_deadline_command(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "deadline", "--slots", "300", "--scenarios", "1", "--trials", "1",
        ]) == 0
        assert "Deadline objective" in capsys.readouterr().out

    def test_ablation_command(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "ablation", "replanning", "--scenarios", "1", "--trials", "1",
        ]) == 0
        assert "ablation: replanning" in capsys.readouterr().out
