"""Tests for the theorem2 validation study and the ablation module."""

import pytest

from repro.experiments.ablation import ABLATIONS, render_ablation, run_ablation
from repro.experiments.theorem2_study import (
    render_theorem2_study,
    run_theorem2_study,
)


class TestTheorem2Study:
    @pytest.fixture(scope="class")
    def result(self):
        return run_theorem2_study(chains=3, samples=4000, workload=5, seed=1)

    def test_all_quantities_validated(self, result):
        names = [v.quantity for v in result.validations]
        assert any("Lemma 1" in n for n in names)
        assert any("Theorem 2" in n for n in names)
        assert any("matrix power" in n for n in names)
        assert any("rank-1" in n for n in names)

    def test_closed_forms_match_monte_carlo(self, result):
        for validation in result.validations:
            if "rank-1" in validation.quantity:
                continue  # genuine approximation, not statistical noise
            assert validation.max_abs_error < 0.05, validation

    def test_errors_ordered(self, result):
        for validation in result.validations:
            assert 0 <= validation.mean_abs_error <= validation.max_abs_error

    def test_render(self, result):
        text = render_theorem2_study(result)
        assert "Monte Carlo" in text
        assert "mean |err|" in text


class TestAblation:
    def test_registry_contents(self):
        assert set(ABLATIONS) == {
            "replication", "replanning", "ud-exact", "contention", "proactive",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="valid:"):
            run_ablation("nonsense")

    def test_replanning_ablation_quick(self):
        result = run_ablation(
            "replanning", scenarios=1, trials=1, wmin=2, n=5
        )
        # PR 5: the arm runs on the replan_policy knob (DESIGN.md §10) and
        # gained the relaxed sticky policy next to the two exact arms.
        assert set(result.arms) == {"event-driven", "every-slot", "sticky"}
        event_rounds = result.arms["event-driven"][1]
        slot_rounds = result.arms["every-slot"][1]
        sticky_rounds = result.arms["sticky"][1]
        assert sticky_rounds < event_rounds < slot_rounds
        text = render_ablation(result)
        assert "replanning" in text

    def test_replanning_ablation_survives_every_slot_base(self):
        """run_ablation(replan_policy='every-slot') must not leak the
        legacy alias flag into the per-arm replace() calls (the event arm
        would re-canonicalise to every-slot and the sticky arm would
        raise a conflict)."""
        result = run_ablation(
            "replanning", scenarios=1, trials=1, wmin=2, n=5,
            replan_policy="every-slot",
        )
        event_rounds = result.arms["event-driven"][1]
        slot_rounds = result.arms["every-slot"][1]
        assert event_rounds < slot_rounds

    def test_replication_ablation_quick(self):
        result = run_ablation(
            "replication", scenarios=1, trials=1, wmin=2, n=5
        )
        assert set(result.arms) == {
            "0 extra replicas", "1 extra replicas", "2 extra replicas",
        }
        for mean, _rounds in result.arms.values():
            assert mean > 0

    def test_proactive_ablation_quick(self):
        result = run_ablation(
            "proactive", scenarios=1, trials=1, wmin=2, n=5
        )
        assert set(result.arms) == {"dynamic", "proactive"}


class TestCliStudies:
    def test_theorem2_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["theorem2", "--chains", "2", "--samples", "2000"]) == 0
        assert "Theorem 2" in capsys.readouterr().out

    def test_deadline_command(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "deadline", "--slots", "300", "--scenarios", "1", "--trials", "1",
        ]) == 0
        assert "Deadline objective" in capsys.readouterr().out

    def test_ablation_command(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "ablation", "replanning", "--scenarios", "1", "--trials", "1",
        ]) == 0
        assert "ablation: replanning" in capsys.readouterr().out


class TestReplanStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.replan_study import run_replan_study

        return run_replan_study(
            policies=("event", "relevant-up", "sticky"),
            heuristics=("emct*", "mct", "random1w"),
            scenarios=1,
            trials=1,
            wmin_values=(1, 5),
        )

    def test_baseline_first_and_populated(self, result):
        assert result.baseline.policy == "event"
        assert result.instances == 2  # 2 wmin × 1 scenario × 1 trial
        for outcome in result.outcomes:
            assert set(outcome.avg_dfb) == {"emct*", "mct", "random1w"}
            assert set(outcome.dfb_by_wmin) == {1, 5}
            assert outcome.rounds > 0
            assert outcome.seconds > 0

    def test_baseline_deviation_is_zero(self, result):
        deviation = result.deviation(result.baseline)
        assert deviation["max_dfb_shift"] == 0.0
        assert deviation["figure2_max_shift"] == 0.0
        assert deviation["rank_correlation"] == 1.0
        assert deviation["makespan_inflation_pct"] == 0.0
        assert deviation["shape_preserving"]

    def test_sticky_cuts_rounds(self, result):
        sticky = next(o for o in result.outcomes if o.policy == "sticky")
        deviation = result.deviation(sticky)
        assert deviation["round_reduction"] > 0.2

    def test_exact_tier_active_in_every_arm(self, result):
        # The exact tier is bit-identical, so it stays on under every
        # policy; on these multi-worker cells it proves at least one round.
        for outcome in result.outcomes:
            assert outcome.rounds_elided > 0

    def test_rejects_bad_policy_before_running(self):
        from repro.experiments.replan_study import run_replan_study

        with pytest.raises(ValueError):
            run_replan_study(policies=("event", "bogus"), scenarios=1)

    def test_render(self, result):
        from repro.experiments.replan_study import render_replan_study

        text = render_replan_study(result)
        assert "average dfb per replan policy" in text
        assert "deviation vs event baseline" in text
        assert "sticky" in text

    def test_spearman(self):
        from repro.experiments.replan_study import _spearman

        assert _spearman(["a", "b", "c"], ["a", "b", "c"]) == 1.0
        assert _spearman(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_cli_command(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "replan-study", "--scenarios", "1", "--trials", "1",
            "--wmin", "1", "--policies", "event", "sticky",
            "--heuristics", "emct*", "mct",
        ]) == 0
        assert "deviation vs event baseline" in capsys.readouterr().out

    def test_cli_replan_policy_flag_on_campaigns(self, capsys):
        from repro.experiments.cli import main

        assert main([
            "deadline", "--slots", "300", "--scenarios", "1", "--trials",
            "1", "--replan-policy", "sticky",
        ]) == 0
        assert "Deadline objective" in capsys.readouterr().out
