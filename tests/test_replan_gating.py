"""Round-relevance gating: exact elision bit-identity + replan policies.

The PR-5 gate (DESIGN.md §10), in two halves:

* **exact tier** — for every registry heuristic, the simulator with
  ``round_relevance="exact"`` (the default: rounds whose no-op-ness the
  scheduler proves are skipped) must produce **bit-identical** reports,
  event logs, and network audit trails to ``round_relevance="off"``
  (every round executes), across both objectives and both stepping
  modes; deterministic batch heuristics must actually elide rounds on
  multi-worker cells, while the conservative ``would_replan`` default
  (random family, passive, external schedulers, the shim-run exact-UD
  ablation) must elide none.  In audit mode proofs are validated instead
  of used: the round runs and the predicted no-op is asserted.

* **relaxed tier** — the ``replan_policy`` knob: every policy must be
  invariant across step modes and instance stores (spans may only glide
  over what the policy provably ignores), ``debounce:1`` must equal the
  event-driven default exactly, and ``every-slot`` must stay a faithful
  alias of the legacy ``replan_every_slot`` flag.
"""

import numpy as np
import pytest

from repro.core.heuristics.base import ReplanProbe, Scheduler
from repro.core.heuristics.registry import HEURISTIC_FACTORIES, make_scheduler
from repro.sim.events import EventLog
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.sim.relevance import ReplanPolicy, parse_replan_policy
from repro.workload.scenarios import ScenarioGenerator

ALL_HEURISTICS = sorted(HEURISTIC_FACTORIES) + ["clairvoyant"]

#: Deterministic batch-scoring heuristics: the exact tier can prove
#: elisions for these.
PROVABLE = ["mct", "mct*", "emct", "emct*", "lw", "lw*", "ud", "ud*"]

#: Heuristics that must keep the conservative default (randomised draws,
#: cross-round state, or no batch scoring).
CONSERVATIVE = ["random", "random2w", "passive", "ud-exact"]


def run_one(
    scenario,
    heuristic,
    *,
    trial=0,
    objective="run",
    budget=40_000,
    with_log=True,
    **options_kwargs,
):
    platform = scenario.build_platform(trial)
    log = EventLog(enabled=with_log)
    sim = MasterSimulator(
        platform,
        scenario.app,
        make_scheduler(heuristic, platform=platform),
        options=SimulatorOptions(**options_kwargs),
        rng=scenario.scheduler_rng(trial, heuristic),
        log=log,
    )
    if objective == "run":
        report = sim.run(max_slots=budget)
    else:
        report = sim.run_slots(budget)
    return sim, (report, log.events, sim.network.usage)


def run_relevance_pair(scenario, heuristic, **kwargs):
    """Run relevance exact vs off on identical inputs."""
    outcomes = {}
    sims = {}
    for relevance in ("off", "exact"):
        sims[relevance], outcomes[relevance] = run_one(
            scenario, heuristic, round_relevance=relevance, **kwargs
        )
    return sims, outcomes


def assert_identical(outcomes, keys=("off", "exact")):
    first, second = (outcomes[key] for key in keys)
    assert second[0] == first[0]  # reports
    assert second[1] == first[1]  # event logs
    assert second[2] == first[2]  # network audit trails


class TestExactTierBitIdentical:
    """Every registry heuristic, both objectives, both step modes."""

    @pytest.mark.parametrize("step_mode", ["span", "slot"])
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
    def test_run_objective(self, heuristic, step_mode):
        scenario = ScenarioGenerator(12061).scenario(5, 5, 1, 0)
        sims, outcomes = run_relevance_pair(
            scenario, heuristic, step_mode=step_mode, budget=30_000
        )
        assert_identical(outcomes)
        assert outcomes["exact"][0].makespan is not None  # sanity: finished
        assert sims["off"].rounds_elided == 0

    @pytest.mark.parametrize("step_mode", ["span", "slot"])
    @pytest.mark.parametrize("heuristic", ALL_HEURISTICS)
    def test_run_slots_objective(self, heuristic, step_mode):
        scenario = ScenarioGenerator(12061).scenario(5, 5, 2, 1)
        _sims, outcomes = run_relevance_pair(
            scenario,
            heuristic,
            trial=1,
            objective="run_slots",
            budget=800,
            step_mode=step_mode,
        )
        assert_identical(outcomes)

    @pytest.mark.parametrize("heuristic", ["emct*", "mct", "ud*", "lw"])
    def test_midpoint_cell_elides_and_matches(self, heuristic):
        """The p=20 midpoint cell: elision must both fire and vanish."""
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        sims, outcomes = run_relevance_pair(scenario, heuristic, budget=60_000)
        assert_identical(outcomes)
        assert sims["exact"].rounds_elided > 0
        # Elided rounds still count as executed (the oracle executes them).
        assert (
            outcomes["exact"][0].scheduler_rounds
            == outcomes["off"][0].scheduler_rounds
        )

    @pytest.mark.parametrize(
        "options_kwargs",
        [
            {"replication": False},
            {"max_replicas": 0},
            {"proactive": True},
            {"replan_every_slot": True},
            {"instance_store": "legacy"},
            {"scheduler_api": "legacy"},
        ],
        ids=[
            "no-replication",
            "zero-replicas",
            "proactive",
            "replan-every",
            "legacy-store",
            "legacy-api",
        ],
    )
    def test_option_variants_bit_identical(self, options_kwargs):
        scenario = ScenarioGenerator(7).scenario(5, 5, 2, 0)
        _sims, outcomes = run_relevance_pair(
            scenario, "emct", budget=50_000, **options_kwargs
        )
        assert_identical(outcomes)

    @pytest.mark.parametrize("config_seed", range(8))
    def test_random_config_bit_identical(self, config_seed):
        """Randomised cells over the full registry, both relevance arms."""
        cfg = np.random.default_rng(5200 + config_seed)
        n = int(cfg.choice([1, 2, 5, 10, 20, 40]))
        ncom = int(cfg.choice([1, 5, 10]))
        wmin = int(cfg.integers(1, 6))
        heuristic = str(cfg.choice(ALL_HEURISTICS))
        objective = str(cfg.choice(["run", "run_slots"]))
        budget = 25_000 if objective == "run" else int(cfg.integers(300, 1500))
        scenario = ScenarioGenerator(900 + config_seed).scenario(
            n, ncom, wmin, 0
        )
        _sims, outcomes = run_relevance_pair(
            scenario,
            heuristic,
            objective=objective,
            budget=budget,
            step_mode=str(cfg.choice(["span", "slot"])),
        )
        assert_identical(outcomes)


class TestProofValidation:
    """The proof rules themselves, and their audit-mode cross-check."""

    @pytest.mark.parametrize("heuristic", ["emct*", "mct", "ud", "lw*"])
    def test_audit_mode_validates_instead_of_eliding(self, heuristic):
        """Under audit every fired proof is asserted against the executed
        round (``_audit_elision``): the run must pass its assertions and
        still match the relevance-off oracle — while eliding nothing."""
        scenario = ScenarioGenerator(12061).scenario(10, 5, 3, 0)
        sims, outcomes = run_relevance_pair(
            scenario, heuristic, budget=50_000, audit=True
        )
        assert_identical(outcomes)
        assert sims["exact"].rounds_elided == 0  # validated, not used

    @pytest.mark.parametrize("heuristic", PROVABLE)
    def test_provable_heuristics_elide(self, heuristic):
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        sim, _ = run_one(scenario, heuristic, budget=60_000, with_log=False)
        assert sim.rounds_elided > 0, f"{heuristic} proved nothing"

    @pytest.mark.parametrize("heuristic", CONSERVATIVE)
    def test_conservative_heuristics_never_elide(self, heuristic):
        """Randomised, stateful, and shim-run schedulers keep the
        conservative would_replan default: always replan."""
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        sim, _ = run_one(scenario, heuristic, budget=60_000, with_log=False)
        assert sim.rounds_elided == 0

    def test_unknown_external_scheduler_never_elides(self):
        """An external Scheduler subclass the package knows nothing about
        must fall back to always-replan (the conservative default)."""

        class FirstUpScheduler(Scheduler):
            name = "first-up"

            def select(self, ctx, candidates, nq, n_active):
                return candidates[0].index if candidates else None

        scenario = ScenarioGenerator(12061).scenario(10, 5, 2, 0)
        platform = scenario.build_platform(0)
        sim = MasterSimulator(
            platform,
            scenario.app,
            FirstUpScheduler(),
            options=SimulatorOptions(),
            rng=scenario.scheduler_rng(0, "first-up"),
        )
        report = sim.run(max_slots=40_000)
        assert report.makespan is not None
        assert sim.rounds_elided == 0

    def test_cheap_proof_without_placements(self):
        """The contract allows a proof that never fills probe.placements
        (a False answer asserts placements == hosts); the gate must fall
        back to the hosts instead of crashing, bit-identically."""
        from repro.core.heuristics.mct import MctScheduler

        class CheapProofMct(MctScheduler):
            def would_replan(self, rs, probe):
                replan = super().would_replan(rs, probe)
                if not replan:
                    probe.placements = None  # cheaper proofs may not place
                return replan

        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        outcomes = {}
        sims = {}
        for relevance in ("off", "exact"):
            platform = scenario.build_platform(0)
            log = EventLog(enabled=True)
            sim = MasterSimulator(
                platform,
                scenario.app,
                CheapProofMct(),
                options=SimulatorOptions(round_relevance=relevance),
                rng=scenario.scheduler_rng(0, "mct"),
                log=log,
            )
            report = sim.run(max_slots=60_000)
            sims[relevance] = sim
            outcomes[relevance] = (report, log.events, sim.network.usage)
        assert_identical(outcomes)
        assert sims["exact"].rounds_elided > 0

    def test_would_replan_contract(self):
        """GreedyScheduler.would_replan re-places, stashes the placements
        on the probe, and answers by comparison; the base default answers
        True without touching the probe."""
        from repro.core.heuristics.base import RoundState
        from repro.core.markov import paper_random_model

        rng = np.random.default_rng(3)
        beliefs = [paper_random_model(rng) for _ in range(4)]
        rs = RoundState(
            speed_w=[2, 3, 4, 5],
            beliefs=beliefs,
            t_prog=5,
            t_data=1,
            ncom=2,
            rng=np.random.default_rng(0),
        )
        rs.state[:] = 0  # all UP (ProcState.UP == 0)
        rs.invalidate()
        scheduler = make_scheduler("mct")
        reference = scheduler.place_array(rs, 2)
        probe = ReplanProbe(n_tasks=2, hosts=list(reference), dirty_mask=b"")
        assert scheduler.would_replan(rs, probe) is False
        assert probe.placements == reference
        moved = ReplanProbe(
            n_tasks=2, hosts=[None, None], dirty_mask=b""
        )
        assert scheduler.would_replan(rs, moved) is True
        assert moved.placements == reference  # reusable by the round

        class Opaque(Scheduler):
            def select(self, ctx, candidates, nq, n_active):  # pragma: no cover
                return None

        untouched = ReplanProbe(n_tasks=0, hosts=[], dirty_mask=b"")
        assert Opaque().would_replan(rs, untouched) is True
        assert untouched.placements is None


class TestReplanPolicies:
    """The relaxed tier: parsing, aliasing, and mode invariance."""

    def test_parse_specs(self):
        assert parse_replan_policy("event") == ReplanPolicy("event")
        assert parse_replan_policy("sticky").ignores_churn
        assert parse_replan_policy("relevant-up").ignores_empty_exits
        debounce = parse_replan_policy("debounce:12")
        assert debounce == ReplanPolicy("debounce", 12)
        assert debounce.spec() == "debounce:12"
        assert parse_replan_policy("every-slot").churn_always

    @pytest.mark.parametrize(
        "spec",
        ["nope", "debounce", "debounce:", "debounce:x", "debounce:0",
         "event:3", ""],
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_replan_policy(spec)

    def test_options_validate_policy_and_relevance(self):
        with pytest.raises(ValueError):
            SimulatorOptions(replan_policy="bogus")
        with pytest.raises(ValueError):
            SimulatorOptions(round_relevance="sometimes")

    def test_every_slot_alias(self):
        """Either spelling selects the ablation arm; they stay in sync."""
        by_flag = SimulatorOptions(replan_every_slot=True)
        assert by_flag.replan_policy == "every-slot"
        by_policy = SimulatorOptions(replan_policy="every-slot")
        assert by_policy.replan_every_slot is True
        with pytest.raises(ValueError):
            SimulatorOptions(replan_every_slot=True, replan_policy="sticky")

    def test_every_slot_alias_bit_identical(self):
        scenario = ScenarioGenerator(11).scenario(5, 5, 1, 0)
        outcomes = {}
        for kwargs in ({"replan_every_slot": True},
                       {"replan_policy": "every-slot"}):
            _sim, outcomes[tuple(kwargs)] = run_one(
                scenario, "emct*", budget=30_000, **kwargs
            )
        first, second = outcomes.values()
        assert first == second

    def test_debounce_one_equals_event(self):
        """Leading-edge cooldown of one slot never suppresses anything."""
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        results = {}
        for policy in ("event", "debounce:1"):
            _sim, results[policy] = run_one(
                scenario, "emct*", budget=60_000, replan_policy=policy
            )
        assert results["debounce:1"] == results["event"]

    @pytest.mark.parametrize("policy", ["sticky", "debounce:8", "relevant-up"])
    @pytest.mark.parametrize("heuristic", ["emct*", "random2w", "passive"])
    def test_policies_step_mode_and_store_invariant(self, policy, heuristic):
        """Relaxed policies change the science but must not depend on the
        stepping mode, the instance store, or an attached event log —
        spans may only glide over what the policy provably ignores."""
        scenario = ScenarioGenerator(12061).scenario(10, 5, 3, 0)
        outcomes = {}
        for step_mode in ("slot", "span"):
            for store in ("array", "legacy"):
                _sim, outcomes[(step_mode, store)] = run_one(
                    scenario,
                    heuristic,
                    budget=60_000,
                    step_mode=step_mode,
                    instance_store=store,
                    replan_policy=policy,
                )
        reference = outcomes[("slot", "array")]
        for key, outcome in outcomes.items():
            assert outcome == reference, f"{policy}/{key} diverged"

    def test_sticky_reduces_rounds_and_lengthens_spans(self):
        scenario = ScenarioGenerator(12061).scenario(20, 10, 5, 0)
        stats = {}
        for policy in ("event", "sticky"):
            sim, (report, _events, _usage) = run_one(
                scenario,
                "emct*",
                budget=60_000,
                with_log=False,
                replan_policy=policy,
            )
            assert report.makespan is not None
            stats[policy] = (report.scheduler_rounds, sim.steps_executed,
                             report.slots_simulated / sim.steps_executed)
        assert stats["sticky"][0] < stats["event"][0]  # fewer rounds
        assert stats["sticky"][2] > stats["event"][2]  # longer mean span

    def test_relevant_up_never_replans_on_empty_exits(self):
        """relevant-up executes no more rounds than event on the same
        availability sample (it drops a subset of the triggers)."""
        scenario = ScenarioGenerator(12061).scenario(10, 5, 3, 0)
        rounds = {}
        for policy in ("event", "relevant-up"):
            _sim, (report, _e, _u) = run_one(
                scenario, "emct*", budget=60_000, with_log=False,
                replan_policy=policy,
            )
            rounds[policy] = report.scheduler_rounds
        assert rounds["relevant-up"] <= rounds["event"]

    @pytest.mark.parametrize("policy", ["sticky", "debounce:5", "relevant-up"])
    def test_policies_compose_with_exact_tier(self, policy):
        """The exact tier stays bit-identical under every relaxed policy."""
        scenario = ScenarioGenerator(3).scenario(10, 5, 2, 0)
        _sims, outcomes = run_relevance_pair(
            scenario, "emct*", budget=50_000, replan_policy=policy
        )
        assert_identical(outcomes)
