"""Tests for repro.types: state encoding and code conversions."""

import numpy as np
import pytest

from repro.types import (
    CODE_TO_STATE,
    STATE_CODES,
    ProcState,
    codes_from_states,
    states_from_codes,
)


class TestProcState:
    def test_values_are_compact(self):
        assert ProcState.UP == 0
        assert ProcState.RECLAIMED == 1
        assert ProcState.DOWN == 2

    def test_codes_match_paper_notation(self):
        assert ProcState.UP.code == "u"
        assert ProcState.RECLAIMED.code == "r"
        assert ProcState.DOWN.code == "d"

    @pytest.mark.parametrize("code,state", [("u", ProcState.UP),
                                            ("r", ProcState.RECLAIMED),
                                            ("d", ProcState.DOWN)])
    def test_from_code(self, code, state):
        assert ProcState.from_code(code) is state

    def test_from_code_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown processor state code"):
            ProcState.from_code("x")

    def test_code_maps_are_inverse(self):
        for state, code in STATE_CODES.items():
            assert CODE_TO_STATE[code] is state


class TestConversions:
    def test_states_from_codes_string(self):
        trace = states_from_codes("uurd")
        assert trace.dtype == np.uint8
        assert list(trace) == [0, 0, 1, 2]

    def test_states_from_codes_sequence(self):
        trace = states_from_codes(["u", "d"])
        assert list(trace) == [0, 2]

    def test_codes_from_states(self):
        assert codes_from_states([0, 1, 2, 0]) == "urdu"

    def test_round_trip(self):
        original = "uuurdrdruu"
        assert codes_from_states(states_from_codes(original)) == original

    def test_states_from_codes_rejects_bad_char(self):
        with pytest.raises(ValueError):
            states_from_codes("uux")
