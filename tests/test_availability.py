"""Tests for the availability sources (Markov, trace replay, semi-Markov)."""

import numpy as np
import pytest

from repro.core.markov import MarkovAvailabilityModel
from repro.sim.availability import (
    MarkovSource,
    SemiMarkovSource,
    TraceSource,
    WeibullSource,
)
from repro.types import ProcState


def chain(p_uu=0.9, p_rr=0.85, p_dd=0.9):
    return MarkovAvailabilityModel.from_self_loops(p_uu, p_rr, p_dd)


class TestMarkovSource:
    def test_deterministic_given_seed(self):
        model = chain()
        a = MarkovSource(model, np.random.default_rng(5))
        b = MarkovSource(model, np.random.default_rng(5))
        assert [a.state_at(t) for t in range(3000)] == [
            b.state_at(t) for t in range(3000)
        ]

    def test_lazy_growth_beyond_chunk(self):
        source = MarkovSource(chain(), np.random.default_rng(0))
        value = source.state_at(10_000)  # far past the initial chunk
        assert value in (0, 1, 2)

    def test_growth_preserves_history(self):
        source = MarkovSource(chain(), np.random.default_rng(1))
        early = [source.state_at(t) for t in range(100)]
        source.state_at(50_000)
        assert [source.state_at(t) for t in range(100)] == early

    def test_initial_state_honoured(self):
        source = MarkovSource(chain(), np.random.default_rng(2), initial=2)
        assert source.state_at(0) == 2

    def test_materialized(self):
        source = MarkovSource(chain(), np.random.default_rng(3))
        arr = source.materialized(64)
        assert arr.shape == (64,)
        assert all(source.state_at(t) == arr[t] for t in range(64))

    def test_model_exposed(self):
        model = chain()
        assert MarkovSource(model, np.random.default_rng(0)).model is model


class TestTraceSource:
    def test_replay(self):
        source = TraceSource([0, 1, 2, 0])
        assert [source.state_at(t) for t in range(4)] == [0, 1, 2, 0]

    def test_pads_down_by_default(self):
        source = TraceSource([0, 0])
        assert source.state_at(2) == int(ProcState.DOWN)
        assert source.state_at(999) == int(ProcState.DOWN)

    def test_custom_pad(self):
        source = TraceSource([0], pad_state=ProcState.RECLAIMED)
        assert source.state_at(5) == int(ProcState.RECLAIMED)

    def test_len(self):
        assert len(TraceSource([0, 1, 2])) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceSource([])

    def test_rejects_bad_states(self):
        with pytest.raises(ValueError):
            TraceSource([0, 5])

    def test_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            TraceSource([0]).state_at(-1)


class TestSemiMarkovSource:
    @staticmethod
    def _geometric(p):
        def sample(rng):
            return int(rng.geometric(p))

        return sample

    def _embedded(self):
        return np.array(
            [
                [0.0, 0.6, 0.4],
                [0.8, 0.0, 0.2],
                [1.0, 0.0, 0.0],
            ]
        )

    def test_states_valid(self):
        source = SemiMarkovSource(
            self._embedded(),
            {s: self._geometric(0.2) for s in (0, 1, 2)},
            np.random.default_rng(0),
        )
        assert all(source.state_at(t) in (0, 1, 2) for t in range(5000))

    def test_deterministic(self):
        def build(seed):
            return SemiMarkovSource(
                self._embedded(),
                {s: self._geometric(0.3) for s in (0, 1, 2)},
                np.random.default_rng(seed),
            )

        a, b = build(9), build(9)
        assert [a.state_at(t) for t in range(2000)] == [
            b.state_at(t) for t in range(2000)
        ]

    def test_geometric_sojourns_reduce_to_markov_statistics(self):
        # With geometric sojourns the process is a Markov chain; its
        # long-run UP fraction must match the equivalent chain's pi_u.
        model = chain(0.9, 0.8, 0.7)
        # Equivalent semi-Markov: jump matrix = conditional transitions,
        # sojourn at state x geometric with success 1 - p_xx.
        embedded = model.matrix.copy()
        np.fill_diagonal(embedded, 0.0)
        embedded = embedded / embedded.sum(axis=1, keepdims=True)
        samplers = {
            0: self._geometric(1 - model.p_uu),
            1: self._geometric(1 - model.p_rr),
            2: self._geometric(1 - model.p_dd),
        }
        source = SemiMarkovSource(embedded, samplers, np.random.default_rng(4))
        states = np.array([source.state_at(t) for t in range(150_000)])
        freq = np.bincount(states, minlength=3) / len(states)
        assert np.allclose(freq, model.stationary, atol=0.02)

    def test_rejects_nonzero_diagonal(self):
        bad = np.array([[0.5, 0.25, 0.25], [0.8, 0.0, 0.2], [1.0, 0.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            SemiMarkovSource(
                bad, {s: self._geometric(0.5) for s in (0, 1, 2)},
                np.random.default_rng(0),
            )

    def test_rejects_missing_sampler(self):
        with pytest.raises(ValueError, match="missing sojourn sampler"):
            SemiMarkovSource(
                self._embedded(), {0: self._geometric(0.5)},
                np.random.default_rng(0),
            )

    def test_rejects_zero_sojourn(self):
        source_samplers = {s: (lambda rng: 0) for s in (0, 1, 2)}
        with pytest.raises(ValueError, match="sojourns must be >= 1"):
            SemiMarkovSource(
                self._embedded(), source_samplers, np.random.default_rng(0)
            )


class TestWeibullSource:
    def test_states_valid_and_all_three_reachable(self):
        source = WeibullSource(
            shape=0.7,
            scale=30.0,
            mean_reclaimed=10.0,
            mean_down=20.0,
            p_up_to_reclaimed=0.7,
            rng=np.random.default_rng(0),
        )
        states = {source.state_at(t) for t in range(30_000)}
        assert states == {0, 1, 2}

    def test_heavy_tail_shape_gives_longer_up_runs_on_average(self):
        def mean_up_run(shape, seed):
            source = WeibullSource(
                shape=shape,
                scale=20.0,
                mean_reclaimed=5.0,
                mean_down=5.0,
                p_up_to_reclaimed=0.5,
                rng=np.random.default_rng(seed),
            )
            states = [source.state_at(t) for t in range(40_000)]
            runs, current = [], 0
            for s in states:
                if s == 0:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            return np.mean(runs)

        # Same scale: smaller shape -> larger mean (Gamma(1 + 1/k) grows).
        assert mean_up_run(0.5, 1) > mean_up_run(2.0, 1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WeibullSource(
                shape=-1, scale=1, mean_reclaimed=1, mean_down=1,
                p_up_to_reclaimed=0.5, rng=np.random.default_rng(0),
            )
        with pytest.raises(ValueError):
            WeibullSource(
                shape=1, scale=1, mean_reclaimed=1, mean_down=1,
                p_up_to_reclaimed=1.5, rng=np.random.default_rng(0),
            )


class TestUnifiedSourceContract:
    """The run-length interface every source shares (DESIGN.md §6)."""

    def _sources(self):
        return [
            MarkovSource(chain(), np.random.default_rng(3)),
            TraceSource(
                np.random.default_rng(4).integers(0, 3, 400),
                pad_state=ProcState.DOWN,
            ),
            TraceSource(
                np.random.default_rng(5).integers(0, 3, 400),
                pad_state=ProcState.UP,
            ),
            WeibullSource(
                shape=0.7, scale=25, mean_reclaimed=6, mean_down=9,
                p_up_to_reclaimed=0.6, rng=np.random.default_rng(6),
            ),
        ]

    def test_next_change_after_matches_state_at(self):
        rng = np.random.default_rng(0)
        for source in self._sources():
            reference = [source.state_at(t) for t in range(1200)]
            for _ in range(60):
                slot = int(rng.integers(0, 600))
                limit = int(rng.integers(slot + 1, 1100))
                expected = next(
                    (s for s in range(slot + 1, limit + 1)
                     if reference[s] != reference[slot]),
                    None,
                )
                assert source.next_change_after(slot, limit=limit) == expected

    def test_next_change_no_limit_finds_real_change(self):
        source = MarkovSource(chain(), np.random.default_rng(9))
        slot = 0
        for _ in range(50):
            change = source.next_change_after(slot)
            assert change is not None and change > slot
            assert source.state_at(change) != source.state_at(slot)
            if change > 1:
                assert source.state_at(change - 1) == source.state_at(slot)
            slot = change

    def test_exhausted_trace_never_changes_again(self):
        source = TraceSource([0, 0, 2], pad_state=ProcState.DOWN)
        assert source.next_change_after(1) == 2  # into the final DOWN run
        assert source.next_change_after(2, limit=10_000) is None
        assert source.next_change_after(500, limit=10_000) is None

    def test_block_and_materialized_match_state_at(self):
        for source in self._sources():
            expected = [source.state_at(t) for t in range(50, 130)]
            assert source.block(50, 130).tolist() == expected
            assert source.materialized(130).tolist() == [
                source.state_at(t) for t in range(130)
            ]

    def test_up_count_in_matches_state_at(self):
        rng = np.random.default_rng(1)
        up = int(ProcState.UP)
        for source in self._sources():
            reference = [source.state_at(t) for t in range(1000)]
            for _ in range(40):
                a, b = sorted(rng.integers(0, 1000, size=2))
                expected = sum(1 for s in range(a, b) if reference[s] == up)
                assert source.up_count_in(int(a), int(b)) == expected

    def test_nth_up_after_matches_state_at(self):
        rng = np.random.default_rng(2)
        up = int(ProcState.UP)
        for source in self._sources():
            reference = [source.state_at(t) for t in range(2000)]
            for _ in range(40):
                slot = int(rng.integers(0, 800))
                k = int(rng.integers(1, 25))
                count = 0
                expected = None
                for s in range(slot + 1, 1500):
                    if reference[s] == up:
                        count += 1
                        if count == k:
                            expected = s
                            break
                assert source.nth_up_after(slot, k, limit=1499) == expected

    def test_nth_up_after_rejects_bad_k(self):
        for source in self._sources():
            with pytest.raises(ValueError):
                source.nth_up_after(0, 0)

    def test_semi_markov_state_at_skips_hot_path_validation(self):
        # The unified contract keeps validation off state_at (satellite):
        # batched accessors validate instead.
        source = self._sources()[3]
        with pytest.raises(ValueError):
            source.block(-1, 10)


class TestRleStorage:
    """The run-length-encoded backing of the lazy sources (DESIGN.md §9):
    every query agrees with the dense materialisation, and memory is
    O(transitions) rather than O(slots)."""

    def _rle_sources(self):
        return [
            MarkovSource(chain(), np.random.default_rng(11)),
            MarkovSource(chain(0.99, 0.95, 0.9), np.random.default_rng(12)),
            SemiMarkovSource(
                np.array(
                    [[0.0, 0.6, 0.4], [0.8, 0.0, 0.2], [1.0, 0.0, 0.0]]
                ),
                {
                    s: (lambda rng: int(rng.geometric(0.15)))
                    for s in (0, 1, 2)
                },
                np.random.default_rng(13),
            ),
            WeibullSource(
                shape=0.7, scale=25, mean_reclaimed=6, mean_down=9,
                p_up_to_reclaimed=0.6, rng=np.random.default_rng(14),
            ),
        ]

    @pytest.mark.parametrize("index", range(4))
    def test_queries_agree_with_dense_reference(self, index):
        """up_count_in / nth_up_after / block / next_change_after against
        a dense TraceSource built from the same materialisation, on
        randomized windows."""
        source = self._rle_sources()[index]
        horizon = 6000
        dense = TraceSource(
            source.materialized(horizon), pad_state=ProcState.DOWN
        )
        rng = np.random.default_rng(100 + index)
        for _ in range(120):
            a, b = sorted(int(x) for x in rng.integers(0, horizon, size=2))
            assert source.up_count_in(a, b) == dense.up_count_in(a, b)
            assert np.array_equal(source.block(a, b), dense.block(a, b))
            slot = int(rng.integers(0, horizon // 2))
            limit = int(rng.integers(slot + 1, horizon - 1))
            assert source.next_change_after(
                slot, limit=limit
            ) == dense.next_change_after(slot, limit=limit)
            k = int(rng.integers(1, 40))
            assert source.nth_up_after(slot, k, limit=limit) == (
                dense.nth_up_after(slot, k, limit=limit)
            )

    def test_markov_rle_matches_direct_dense_sampling(self):
        """The RLE store never changes what is drawn: the materialised
        trace equals the model's own dense sampling with the same rng and
        chunk schedule (1024, then doubling)."""
        model = chain()
        source = MarkovSource(model, np.random.default_rng(77))
        reference_rng = np.random.default_rng(77)
        reference = model.sample_trace(1024, reference_rng)
        while len(reference) < 5000:
            reference = model.extend_trace(
                reference, max(1024, len(reference)), reference_rng
            )
        assert np.array_equal(source.materialized(5000), reference[:5000])

    def test_memory_is_o_transitions(self):
        source = MarkovSource(chain(0.98, 0.95, 0.95), np.random.default_rng(3))
        source.state_at(200_000)  # materialise a long horizon
        slots = source.slots_materialized
        assert slots >= 200_000
        # Runs are mean-sojourn slots long, so storage is far below the
        # dense trace + int64 UP-prefix representation it replaced.
        assert source.run_count < slots // 8
        assert source.storage_bytes() == source.run_count * 17
        assert source.dense_bytes() == slots * 9
        assert source.dense_bytes() > 4 * source.storage_bytes()

    def test_runs_partition_the_trace(self):
        source = MarkovSource(chain(), np.random.default_rng(21))
        source.state_at(3000)
        n = source.run_count
        starts = source._run_starts[:n]
        states = source._run_states[:n]
        assert starts[0] == 0
        assert (np.diff(starts) > 0).all()
        assert (states[1:] != states[:-1]).all()  # maximal runs
        # The per-run UP prefix matches a dense recount.
        dense = source.materialized(int(starts[-1]))
        for i in (1, n // 2, n - 1):
            expected = int(np.count_nonzero(dense[: starts[i]] == 0))
            assert source._run_up[i] == expected

    def test_cursor_handles_random_access(self):
        source = MarkovSource(chain(), np.random.default_rng(31))
        dense = source.materialized(4000)
        rng = np.random.default_rng(32)
        for slot in rng.integers(0, 4000, size=500):
            assert source.state_at(int(slot)) == dense[int(slot)]

    def test_trace_source_diagnostics(self):
        dense = TraceSource([0, 0, 1, 2, 0])
        assert dense.dense_bytes() == 5 * 9
        before = dense.storage_bytes()
        dense.up_count_in(0, 5)  # builds the prefix
        assert dense.storage_bytes() > before


class TestRleCursorBoundaries:
    """Deterministic boundary cases for the RLE run cursors (§12).

    A scripted semi-Markov source — jump chain cycling 0 → 1 → 2 → 0,
    sojourns read from a fixed schedule — pins the exact run layout, so
    every query can be asserted at the slots where off-by-one bugs live:
    the first and last slot of a run, the transition slot itself, and
    limits landing exactly on (or one before) an answer.
    """

    #: Scripted run lengths; states cycle UP, RECLAIMED, DOWN, UP, ...
    LENGTHS = [5, 3, 4, 6, 2, 8]

    @classmethod
    def _scripted(cls):
        cycle = np.array(
            [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]
        )
        schedule = iter(cls.LENGTHS * 50)

        def sample(rng):
            return next(schedule)

        return SemiMarkovSource(
            cycle, {s: sample for s in (0, 1, 2)}, np.random.default_rng(0)
        )

    @classmethod
    def _runs(cls):
        """(start, stop, state) triples of the scripted layout."""
        runs, position = [], 0
        for i, length in enumerate(cls.LENGTHS * 50):
            runs.append((position, position + length, i % 3))
            position += length
        return runs

    def test_state_at_run_edges(self):
        source = self._scripted()
        for start, stop, state in self._runs()[:12]:
            assert source.state_at(start) == state
            assert source.state_at(stop - 1) == state

    def test_next_change_after_at_run_edges(self):
        source = self._scripted()
        runs = self._runs()
        for (start, stop, _), (nxt, _, _) in zip(runs[:10], runs[1:11]):
            assert nxt == stop
            # Anywhere inside a run the next change is the next start.
            assert source.next_change_after(start) == nxt
            assert source.next_change_after(stop - 1) == nxt

    def test_next_change_after_limit_edges(self):
        source = self._scripted()
        start, stop, _ = self._runs()[3]
        # limit == the answer: found; limit one before: not found.
        assert source.next_change_after(start, limit=stop) == stop
        assert source.next_change_after(start, limit=stop - 1) is None

    def test_up_count_in_run_aligned_windows(self):
        source = self._scripted()
        for start, stop, state in self._runs()[:9]:
            expected = (stop - start) if state == int(ProcState.UP) else 0
            assert source.up_count_in(start, stop) == expected
            # Shifting one edge by one slot moves the count iff UP.
            inside = source.up_count_in(start + 1, stop)
            assert inside == max(0, expected - 1)

    def test_up_count_in_degenerate_windows(self):
        source = self._scripted()
        assert source.up_count_in(7, 7) == 0
        assert source.up_count_in(9, 4) == 0

    def test_nth_up_after_crosses_runs(self):
        source = self._scripted()
        runs = self._runs()
        first_up = runs[0]  # [0, 5) UP
        second_up = runs[3]  # UP again after RECLAIMED + DOWN
        # From the last UP slot of run 0, the next UP is the run-3 start.
        assert source.nth_up_after(first_up[1] - 1, 1) == second_up[0]
        # k walking through run 3: k-th UP is start + k - 1.
        for k in range(1, second_up[1] - second_up[0] + 1):
            assert (
                source.nth_up_after(first_up[1] - 1, k)
                == second_up[0] + k - 1
            )

    def test_nth_up_after_limit_edges(self):
        source = self._scripted()
        second_up = self._runs()[3]
        slot = self._runs()[0][1] - 1
        found = second_up[0]
        assert source.nth_up_after(slot, 1, limit=found) == found
        assert source.nth_up_after(slot, 1, limit=found - 1) is None

    def test_single_run_source_bounded_growth(self):
        cycle = np.array(
            [[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 0.0, 0.0]]
        )
        source = SemiMarkovSource(
            cycle,
            {s: (lambda rng: 50_000) for s in (0, 1, 2)},
            np.random.default_rng(0),
        )
        assert source.state_at(0) == 0
        assert source.state_at(49_999) == 0
        # A limit inside the single run must answer None without growing
        # past the limit by more than one geometric step.
        assert source.next_change_after(0, limit=10_000) is None
        assert source.up_count_in(0, 20_000) == 20_000
        assert source.nth_up_after(0, 123) == 123

    def test_single_run_trace_source_horizon_edge(self):
        dense = TraceSource([0, 0, 0, 0], pad_state=ProcState.DOWN)
        assert dense.up_count_in(0, 4) == 4
        # The pad region starts exactly at the horizon.
        assert dense.next_change_after(0) == 4
        assert dense.state_at(4) == int(ProcState.DOWN)
        # Beyond the pad transition nothing ever changes again.
        assert dense.next_change_after(4, limit=10_000) is None


class TestProcessorFromSemiMarkov:
    """The O(runs) ground-truth constructor (DESIGN.md §12)."""

    def _model(self):
        return MarkovAvailabilityModel.from_self_loops(0.9, 0.8, 0.7)

    def test_builds_semi_markov_truth_with_markov_belief(self):
        from repro.sim.platform import Processor

        model = self._model()
        proc = Processor.from_semi_markov(
            0, 10, model, np.random.default_rng(3)
        )
        assert isinstance(proc.availability, SemiMarkovSource)
        assert proc.belief is model
        assert proc.availability.state_at(0) == int(ProcState.UP)

    def test_initial_state_honoured(self):
        from repro.sim.platform import Processor

        proc = Processor.from_semi_markov(
            0, 10, self._model(), np.random.default_rng(3),
            initial=int(ProcState.DOWN),
        )
        assert proc.availability.state_at(0) == int(ProcState.DOWN)

    def test_matches_markov_statistics(self):
        # Same chain, run-length draw protocol: distributionally equal
        # to the dense Markov sampling (long-run state frequencies).
        from repro.sim.platform import Processor

        model = self._model()
        proc = Processor.from_semi_markov(
            0, 10, model, np.random.default_rng(11)
        )
        states = proc.availability.materialized(120_000)
        freq = np.bincount(states, minlength=3) / len(states)
        assert np.allclose(freq, model.stationary, atol=0.02)

    def test_rejects_absorbing_state(self):
        from repro.sim.platform import Processor

        absorbing = MarkovAvailabilityModel(
            np.array([[1.0, 0.0, 0.0], [0.3, 0.6, 0.1], [0.3, 0.1, 0.6]])
        )
        with pytest.raises(ValueError, match="absorbing"):
            Processor.from_semi_markov(
                0, 10, absorbing, np.random.default_rng(0)
            )
