"""Tests for the worker pipeline state machine."""

import pytest

from repro.sim.worker import TaskInstance, WorkerRuntime, reset_instance


def make_instance(task_id=0, replica_id=0, data_needed=2, **kwargs):
    return TaskInstance(
        iteration=0, task_id=task_id, replica_id=replica_id,
        data_needed=data_needed, **kwargs,
    )


def make_worker(t_prog=3, speed=2):
    return WorkerRuntime(index=0, speed_w=speed, t_prog=t_prog)


class TestTaskInstance:
    def test_fresh_instance_is_unpinned(self):
        inst = make_instance()
        assert not inst.pinned
        assert not inst.data_complete
        assert not inst.computing

    def test_data_progress_pins(self):
        inst = make_instance()
        inst.data_received = 1
        assert inst.pinned
        assert inst.data_started
        assert not inst.data_complete

    def test_zero_data_instance_pins_only_on_compute(self):
        inst = make_instance(data_needed=0)
        assert inst.data_complete
        assert not inst.pinned
        inst.computing = True
        assert inst.pinned

    def test_replica_flag(self):
        assert not make_instance(replica_id=0).is_replica
        assert make_instance(replica_id=1).is_replica

    def test_remaining_counters(self):
        inst = make_instance(data_needed=3)
        inst.data_received = 1
        inst.compute_needed = 4
        inst.compute_done = 1
        assert inst.data_remaining == 2
        assert inst.compute_remaining == 3

    def test_compute_complete(self):
        inst = make_instance()
        inst.compute_needed = 2
        inst.computing = True
        inst.compute_done = 2
        assert inst.compute_complete

    def test_uids_unique(self):
        assert make_instance().uid != make_instance().uid


class TestProgramState:
    def test_fresh_worker_lacks_program(self):
        worker = make_worker(t_prog=3)
        assert not worker.has_program
        assert worker.prog_remaining == 3

    def test_program_complete(self):
        worker = make_worker(t_prog=3)
        worker.prog_received = 3
        assert worker.has_program
        assert worker.prog_remaining == 0

    def test_zero_t_prog_means_program_always_resident(self):
        worker = make_worker(t_prog=0)
        assert worker.has_program

    def test_wants_program_only_with_work(self):
        worker = make_worker(t_prog=2)
        assert not worker.wants_program()
        worker.queue.append(make_instance())
        assert worker.wants_program()


class TestQueueInspection:
    def test_computing_instance_found(self):
        worker = make_worker()
        inst = make_instance()
        inst.computing = True
        inst.compute_needed = 5
        inst.compute_done = 1
        worker.queue.append(inst)
        assert worker.computing_instance is inst

    def test_completed_instance_not_computing(self):
        worker = make_worker()
        inst = make_instance()
        inst.computing = True
        inst.compute_needed = 2
        inst.compute_done = 2
        worker.queue.append(inst)
        assert worker.computing_instance is None

    def test_data_stage_instance(self):
        worker = make_worker()
        computing = make_instance(task_id=0)
        computing.data_received = 2
        computing.computing = True
        computing.compute_needed = 9
        staged = make_instance(task_id=1)
        staged.data_received = 1
        worker.queue.extend([computing, staged])
        assert worker.data_stage_instance is staged

    def test_pinned_vs_planned(self):
        worker = make_worker()
        pinned = make_instance(task_id=0)
        pinned.data_received = 1
        planned = make_instance(task_id=1)
        worker.queue.extend([pinned, planned])
        assert worker.pinned_instances() == [pinned]
        assert worker.planned_instances() == [planned]


class TestNextDataTarget:
    def test_head_of_queue_when_idle(self):
        worker = make_worker()
        inst = make_instance()
        worker.queue.append(inst)
        assert worker.next_data_target() is inst

    def test_prefetch_bound_blocks_second_stage(self):
        worker = make_worker()
        computing = make_instance(task_id=0)
        computing.data_received = 2
        computing.computing = True
        computing.compute_needed = 9
        prefetched = make_instance(task_id=1)
        prefetched.data_received = 2  # complete
        waiting = make_instance(task_id=2)
        worker.queue.extend([computing, prefetched, waiting])
        # Buffer full: no new transfer may start.
        assert worker.next_data_target() is None

    def test_partial_prefetch_is_the_target(self):
        worker = make_worker()
        computing = make_instance(task_id=0)
        computing.data_received = 2
        computing.computing = True
        computing.compute_needed = 9
        partial = make_instance(task_id=1)
        partial.data_received = 1
        worker.queue.extend([computing, partial])
        assert worker.next_data_target() is partial

    def test_zero_data_instances_skipped(self):
        worker = make_worker()
        worker.queue.append(make_instance(data_needed=0))
        assert worker.next_data_target() is None


class TestNextComputeTarget:
    def test_requires_program(self):
        worker = make_worker(t_prog=2)
        inst = make_instance(data_needed=0)
        worker.queue.append(inst)
        assert worker.next_compute_target() is None
        worker.prog_received = 2
        assert worker.next_compute_target() is inst

    def test_requires_complete_data(self):
        worker = make_worker(t_prog=0)
        inst = make_instance(data_needed=2)
        inst.data_received = 1
        worker.queue.append(inst)
        assert worker.next_compute_target() is None
        inst.data_received = 2
        assert worker.next_compute_target() is inst

    def test_busy_worker_has_no_target(self):
        worker = make_worker(t_prog=0)
        computing = make_instance(task_id=0, data_needed=0)
        computing.computing = True
        computing.compute_needed = 5
        ready = make_instance(task_id=1, data_needed=0)
        worker.queue.extend([computing, ready])
        assert worker.next_compute_target() is None


class TestDelayEstimate:
    def test_idle_worker_with_program(self):
        worker = make_worker(t_prog=2)
        worker.prog_received = 2
        assert worker.delay_estimate(t_data=3) == 0

    def test_missing_program_counts(self):
        worker = make_worker(t_prog=5)
        worker.prog_received = 2
        assert worker.delay_estimate(t_data=3) == 3

    def test_computing_instance_counts_remaining(self):
        worker = make_worker(t_prog=0, speed=4)
        inst = make_instance(data_needed=2)
        inst.data_received = 2
        inst.computing = True
        inst.compute_needed = 4
        inst.compute_done = 1
        worker.queue.append(inst)
        assert worker.delay_estimate(t_data=2) == 3

    def test_pipeline_with_prefetch(self):
        # Computing: 5 compute slots left. Prefetch: 1 data slot left, then
        # 4 compute. Comm timeline: 1; CPU: 5 then 4 -> 9.
        worker = make_worker(t_prog=0, speed=4)
        computing = make_instance(task_id=0, data_needed=2)
        computing.data_received = 2
        computing.computing = True
        computing.compute_needed = 5
        prefetch = make_instance(task_id=1, data_needed=2)
        prefetch.data_received = 1
        prefetch.compute_needed = 4
        worker.queue.extend([computing, prefetch])
        assert worker.delay_estimate(t_data=2) == 9

    def test_planned_instances_ignored(self):
        worker = make_worker(t_prog=0)
        worker.queue.append(make_instance())  # unpinned
        assert worker.delay_estimate(t_data=5) == 0


class TestCrash:
    def test_crash_clears_everything(self):
        worker = make_worker(t_prog=4)
        worker.prog_received = 4
        inst = make_instance()
        inst.data_received = 1
        inst.worker = 0
        worker.queue.append(inst)
        lost = worker.crash()
        assert lost == [inst]
        assert worker.prog_received == 0
        assert worker.queue == []
        assert inst.worker is None
        # Progress preserved for accounting; reset_instance wipes it.
        assert inst.data_received == 1
        reset_instance(inst)
        assert inst.data_received == 0
        assert not inst.computing

    def test_remove_instance(self):
        worker = make_worker()
        a, b = make_instance(task_id=0), make_instance(task_id=1)
        a.worker = b.worker = 0
        worker.queue.extend([a, b])
        worker.remove_instance(a)
        assert worker.queue == [b]
        assert a.worker is None


class TestInvariants:
    def test_clean_worker_passes(self):
        worker = make_worker()
        inst = make_instance()
        inst.worker = 0
        worker.queue.append(inst)
        worker.check_invariants()

    def test_two_staged_instances_fail(self):
        worker = make_worker()
        for task_id in (0, 1):
            inst = make_instance(task_id=task_id)
            inst.worker = 0
            inst.data_received = 1
            worker.queue.append(inst)
        with pytest.raises(AssertionError, match="prefetch bound"):
            worker.check_invariants()

    def test_computing_without_program_fails(self):
        worker = make_worker(t_prog=3)
        inst = make_instance(data_needed=0)
        inst.worker = 0
        inst.computing = True
        inst.compute_needed = 2
        worker.queue.append(inst)
        with pytest.raises(AssertionError, match="without program"):
            worker.check_invariants()

    def test_wrong_worker_field_fails(self):
        worker = make_worker()
        inst = make_instance()
        inst.worker = 7
        worker.queue.append(inst)
        with pytest.raises(AssertionError, match="records worker"):
            worker.check_invariants()


class TestSlotsToNextMilestone:
    def _worker(self):
        return WorkerRuntime(index=0, speed_w=5, t_prog=3)

    def test_no_activity_is_none(self):
        assert self._worker().slots_to_next_milestone() is None

    def test_computing_instance_bounds(self):
        worker = self._worker()
        inst = TaskInstance(iteration=0, task_id=0, replica_id=0,
                            data_needed=0, compute_needed=5, compute_done=2,
                            computing=True, worker=0)
        worker.queue.append(inst)
        assert worker.slots_to_next_milestone() == 3

    def test_granted_prog_transfer(self):
        worker = self._worker()
        worker.prog_received = 1
        inst = TaskInstance(iteration=0, task_id=0, replica_id=0,
                            data_needed=2, worker=0)
        worker.queue.append(inst)
        assert worker.slots_to_next_milestone("prog") == 2

    def test_granted_data_transfer_takes_min_with_compute(self):
        worker = self._worker()
        computing = TaskInstance(iteration=0, task_id=0, replica_id=0,
                                 data_needed=0, compute_needed=9,
                                 compute_done=1, computing=True, worker=0)
        staged = TaskInstance(iteration=0, task_id=1, replica_id=0,
                              data_needed=4, data_received=1, worker=0)
        worker.queue.extend([computing, staged])
        assert worker.slots_to_next_milestone("data", staged) == 3

    def test_data_grant_requires_instance(self):
        import pytest

        with pytest.raises(ValueError):
            self._worker().slots_to_next_milestone("data")
