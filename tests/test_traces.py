"""Tests for trace serialisation and the synthetic archive."""

import numpy as np
import pytest

from repro.core.markov import MarkovAvailabilityModel
from repro.sim.availability import MarkovSource, TraceSource
from repro.workload.traces import (
    HostTrace,
    TraceArchive,
    intervals_from_states,
    states_from_intervals,
    synthesize_archive,
)


class TestRunLengthEncoding:
    def test_encode(self):
        assert intervals_from_states([0, 0, 1, 2, 2, 2]) == [
            ("u", 2), ("r", 1), ("d", 3)
        ]

    def test_single_state(self):
        assert intervals_from_states([1]) == [("r", 1)]

    def test_decode(self):
        states = states_from_intervals([("u", 2), ("d", 1)])
        assert list(states) == [0, 0, 2]

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        states = rng.integers(0, 3, size=500).astype(np.uint8)
        rebuilt = states_from_intervals(intervals_from_states(states))
        assert np.array_equal(rebuilt, states)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            intervals_from_states([])
        with pytest.raises(ValueError):
            states_from_intervals([])

    def test_rejects_bad_code(self):
        with pytest.raises(ValueError, match="unknown state code"):
            states_from_intervals([("x", 2)])

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            states_from_intervals([("u", 0)])


class TestHostTrace:
    def test_total_slots(self):
        host = HostTrace("h", (("u", 5), ("r", 3)))
        assert host.total_slots == 8

    def test_availability_fraction(self):
        host = HostTrace("h", (("u", 6), ("d", 2)))
        assert host.availability_fraction() == pytest.approx(0.75)

    def test_to_states(self):
        host = HostTrace("h", (("u", 1), ("d", 2)))
        assert list(host.to_states()) == [0, 2, 2]


class TestArchiveIO:
    def test_save_load_round_trip(self, tmp_path):
        archive = TraceArchive(
            hosts=[
                HostTrace("a", (("u", 10), ("r", 2))),
                HostTrace("b", (("d", 1), ("u", 5))),
            ],
            slot_seconds=30.0,
        )
        path = tmp_path / "traces.json"
        archive.save(path)
        loaded = TraceArchive.load(path)
        assert len(loaded) == 2
        assert loaded.slot_seconds == 30.0
        assert loaded.hosts[0].intervals == (("u", 10), ("r", 2))
        assert loaded.hosts[1].name == "b"

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other", "hosts": []}')
        with pytest.raises(ValueError, match="unsupported trace file format"):
            TraceArchive.load(path)

    def test_load_rejects_bad_interval(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "repro-trace-v1", "hosts": '
            '[{"name": "h", "intervals": [["u", 0]]}]}'
        )
        with pytest.raises(ValueError, match="non-positive duration"):
            TraceArchive.load(path)


class TestSynthesizeArchive:
    def test_from_markov_sources(self):
        model = MarkovAvailabilityModel.from_self_loops(0.9, 0.9, 0.9)
        sources = [
            MarkovSource(model, np.random.default_rng(q)) for q in range(3)
        ]
        archive = synthesize_archive(sources, 200)
        assert len(archive) == 3
        assert all(h.total_slots == 200 for h in archive.hosts)

    def test_archive_replays_identically(self):
        model = MarkovAvailabilityModel.from_self_loops(0.9, 0.9, 0.9)
        source = MarkovSource(model, np.random.default_rng(5))
        original = [source.state_at(t) for t in range(300)]
        archive = synthesize_archive([source], 300)
        replay = TraceSource(archive.hosts[0].to_states())
        assert [replay.state_at(t) for t in range(300)] == original

    def test_custom_names(self):
        model = MarkovAvailabilityModel.from_self_loops(0.9, 0.9, 0.9)
        archive = synthesize_archive(
            [MarkovSource(model, np.random.default_rng(0))], 10,
            names=["alpha"],
        )
        assert archive.hosts[0].name == "alpha"
