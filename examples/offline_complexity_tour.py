#!/usr/bin/env python
"""A guided tour of the paper's Section 4 complexity results.

Walks through all three theoretical artefacts, executably:

1. **Theorem 1** (NP-hardness): builds the Off-Line instance for the exact
   3SAT formula of the paper's Figure 1, converts a satisfying assignment
   into a valid schedule, verifies it against the model, and recovers a
   satisfying assignment back from the schedule.
2. **Proposition 2** (``ncom = ∞`` is polynomial): cross-validates the MCT
   greedy against the exhaustive exact solver on random small instances.
3. **The worked counterexample** (MCT suboptimal for ``ncom = 1``): solves
   the paper's two-processor instance exactly (optimal makespan 9) and
   shows the realised makespan of contention-blind MCT.

Run:  python examples/offline_complexity_tour.py
"""

import numpy as np

from repro.core.offline import (
    PAPER_FIGURE1_FORMULA,
    analyze_counterexample,
    assignment_from_schedule,
    brute_force_sat,
    eliminate_down_states,
    exact_offline_makespan,
    offline_mct,
    reduction_instance,
    render_gadget,
    schedule_from_assignment,
    verify_schedule,
)
from repro.core.offline.instance import OfflineInstance


def theorem_1() -> None:
    print("=" * 64)
    print("Theorem 1 — NP-hardness via 3SAT (the paper's Figure 1 formula)")
    print("=" * 64)
    sat = PAPER_FIGURE1_FORMULA
    print(render_gadget(sat))
    instance = reduction_instance(sat)
    print(f"\nreduction instance: p={instance.p} processors, m={instance.m} "
          f"tasks, Tprog={instance.t_prog}, Tdata={instance.t_data}, "
          f"ncom={instance.ncom}, horizon N={instance.horizon}")
    assignment = brute_force_sat(sat)
    print(f"satisfying assignment found: "
          f"{['FT'[int(v)] for v in assignment]}")
    schedule = schedule_from_assignment(sat, assignment)
    makespan = verify_schedule(instance, schedule)
    print(f"certificate schedule verified: completes {instance.m} tasks in "
          f"{makespan} slots (within N={instance.horizon})")
    recovered = assignment_from_schedule(sat, schedule)
    print(f"assignment recovered from the schedule satisfies the formula: "
          f"{sat.satisfied_by(recovered)}")


def proposition_2() -> None:
    print()
    print("=" * 64)
    print("Proposition 2 — MCT is optimal when ncom = ∞")
    print("=" * 64)
    rng = np.random.default_rng(0)
    agreements = 0
    trials = 10
    for t in range(trials):
        rows = ["".join(rng.choice(list("uuur"), size=14)) for _ in range(2)]
        inst = OfflineInstance.from_codes(
            rows,
            t_prog=int(rng.integers(0, 3)),
            t_data=int(rng.integers(0, 2)),
            speeds=[int(rng.integers(1, 3)) for _ in range(2)],
            ncom=None,
            m=int(rng.integers(1, 4)),
        )
        mct = offline_mct(inst).makespan
        exact = exact_offline_makespan(inst).makespan
        agreements += mct == exact
        print(f"  random instance {t}: MCT={mct}  exact={exact}  "
              f"{'==' if mct == exact else '!!'}")
    print(f"MCT matched the exhaustive optimum on {agreements}/{trials} "
          "instances (Proposition 2 predicts all).")


def down_elimination_demo() -> None:
    print()
    print("=" * 64)
    print("Section 4's DOWN-state elimination (2-state rewriting)")
    print("=" * 64)
    inst = OfflineInstance.from_codes(
        ["uudu", "dduu"], t_prog=1, t_data=0, speeds=1, ncom=1, m=2
    )
    rewritten = eliminate_down_states(inst)
    print(f"original: p={inst.p}, rewritten: p={rewritten.p} (no DOWN states)")
    a = exact_offline_makespan(inst).makespan
    b = exact_offline_makespan(rewritten).makespan
    print(f"optimal makespans agree: original={a}, rewritten={b}")


def counterexample() -> None:
    print()
    print("=" * 64)
    print("Worked example — MCT loses optimality under ncom = 1")
    print("=" * 64)
    print("S1 = uuuuuurrr   S2 = ruuuuuuuu   (Tprog=Tdata=w=2, m=2)")
    result = analyze_counterexample()
    print(f"exact optimal makespan:  {result.optimal_makespan}  (paper: 9)")
    print(f"online MCT makespan:     {result.mct_online_makespan}  (> optimal)")
    print(f"MCT's first-task choice: P{result.mct_first_choice_processor + 1} "
          "(the paper's P1 — the greedy trap)")


def main() -> None:
    theorem_1()
    proposition_2()
    down_elimination_demo()
    counterexample()


if __name__ == "__main__":
    main()
