#!/usr/bin/env python
"""Large grid: one heuristic end-to-end on 10,000 volatile workers.

The paper's evaluation stays at tens of processors; this example runs
the same master–worker protocol on a desktop-grid-scale platform using
the large-platform engine (DESIGN.md §12): the event-calendar
availability index (``platform_index="calendar"``, the default), the
run-length-encoded semi-Markov ground truth (O(runs) memory, not
O(slots)), and the sticky replan policy that desktop-grid deployments
favour at this scale.

The run is driven through the resumable ``begin_run``/``advance_until``
API so a progress line can be printed every few thousand slots without
disturbing the simulation — pausing is bit-identical to a plain
``run()``.

Run:  python examples/large_grid.py [p] [seed]
"""

import sys
import time

from repro.core.heuristics.registry import make_scheduler
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.workload.scenarios import ScenarioGenerator

HEURISTIC = "mct"
BUDGET = 50_000
PROGRESS_EVERY = 2_000


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 12061
    generator = ScenarioGenerator(seed, p=p, iterations=3)
    scenario = generator.large_grid_scenario(40, 10, 30, 0, mean_sojourn=1000)

    print(f"== {HEURISTIC} on a {p}-worker volatile grid (seed {seed}) ==")
    start = time.perf_counter()
    platform = scenario.build_platform(0)
    print(f"platform built in {time.perf_counter() - start:.1f}s")

    sim = MasterSimulator(
        platform,
        scenario.app,
        make_scheduler(HEURISTIC, platform=platform),
        options=SimulatorOptions(replan_policy="sticky"),
        rng=scenario.scheduler_rng(0, HEURISTIC),
    )
    start = time.perf_counter()
    sim.begin_run(max_slots=BUDGET)
    limit = PROGRESS_EVERY
    while not sim.advance_until(limit):
        counts = sim.op_counts
        print(
            f"  slot {sim.report.slots_simulated:>6}: "
            f"{sim.report.scheduler_rounds} rounds, "
            f"{counts['boundaries']} span boundaries, "
            f"{counts['calendar_pops']} calendar pops",
            flush=True,
        )
        limit += PROGRESS_EVERY
    report = sim.finish_run()
    elapsed = time.perf_counter() - start

    counts = sim.op_counts
    trace_bytes = sum(proc.availability.storage_bytes() for proc in platform)
    print(f"makespan: {report.makespan} slots "
          f"({report.completed_iterations}/{report.target_iterations} "
          "iterations)")
    print(f"wall-clock: {elapsed:.1f}s "
          f"({report.slots_simulated / elapsed:,.0f} slots/sec)")
    boundaries = max(counts["boundaries"], 1)
    print(f"boundary work: {counts['boundary_workers_touched'] / boundaries:.1f} "
          f"workers touched per boundary (a full sweep would touch {p})")
    print(f"availability storage: {trace_bytes / p:.0f} B/worker (RLE)")


if __name__ == "__main__":
    main()
