#!/usr/bin/env python
"""Bandwidth-contention study: when does the correcting factor matter?

The paper's unique modelling choice is the bounded multi-port master link
(``nprog + ndata ≤ ncom``).  This example sweeps the communication
intensity of the workload (Table 3's ×1 / ×5 / ×10 settings) and compares
plain heuristics against their contention-corrected ``*`` variants,
reporting average dfb within each pairing plus the master-link utilisation
measured by the network audit.

Run:  python examples/contention_study.py [scenarios]
"""

import sys

import numpy as np

from repro.analysis.plotting import format_table
from repro.core.heuristics.registry import make_scheduler
from repro.experiments.dfb import DfbAccumulator
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.workload.scenarios import ScenarioGenerator

PAIRS = (("mct", "mct*"), ("emct", "emct*"), ("ud", "ud*"))


def measure(comm_factor: int, scenarios: int, trials: int):
    generator = ScenarioGenerator(99)
    population = generator.contention_prone(comm_factor, scenarios)
    acc = DfbAccumulator()
    utilization: dict[str, list[float]] = {}
    for scenario in population:
        for trial in range(trials):
            makespans = {}
            for pair in PAIRS:
                for name in pair:
                    platform = scenario.build_platform(trial)
                    sim = MasterSimulator(
                        platform,
                        scenario.app,
                        make_scheduler(name),
                        options=SimulatorOptions(audit=True),
                        rng=scenario.scheduler_rng(trial, name),
                    )
                    report = sim.run(max_slots=300_000)
                    makespans[name] = float(report.makespan or 300_000)
                    utilization.setdefault(name, []).append(
                        sim.network.mean_utilization()
                    )
            acc.add_instance((scenario.key, trial), makespans)
    return acc, {name: float(np.mean(vals)) for name, vals in utilization.items()}


def main() -> None:
    scenarios = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    for comm_factor in (1, 5, 10):
        acc, util = measure(comm_factor, scenarios, trials=2)
        rows = []
        for plain, star in PAIRS:
            rows.append(
                (
                    f"{plain} vs {star}",
                    acc.average_dfb(plain),
                    acc.average_dfb(star),
                    f"{util[plain]:.2f}",
                    f"{util[star]:.2f}",
                )
            )
        print(
            format_table(
                ["pair", "dfb plain", "dfb star", "util plain", "util star"],
                rows,
                title=(
                    f"communication ×{comm_factor} "
                    f"({acc.instance_count} instances)"
                ),
            )
        )
        print()
    print("expectation from the paper's Table 3: the star variants' dfb")
    print("advantage grows as the communication factor (and the measured")
    print("link utilisation) grows.")


if __name__ == "__main__":
    main()
