#!/usr/bin/env python
"""The deadline objective and the proactive heuristic class.

Two things the paper defines but does not evaluate, made runnable:

1. **Section 3.4's actual objective** — maximise iterations completed
   within ``N`` slots (the evaluation section switches to the equivalent
   fixed-iterations form).  We run the deadline form directly.
2. **The proactive class** (Section 6.1) — "aggressively terminating
   ongoing tasks, at the risk for an iteration to never complete".  The
   paper argues it matters when the last tasks of an iteration sit on
   stalled processors.  Our conservative realisation terminates a pinned
   task only when its worker is RECLAIMED, UP processors outnumber the
   remaining tasks, and less than half the computation is done.

Run:  python examples/deadline_and_proactive.py
"""

from repro.analysis.plotting import format_table
from repro.experiments.deadline_study import (
    render_deadline_study,
    run_deadline_study,
)


def main() -> None:
    print("deadline objective, dynamic heuristics only:\n")
    base = run_deadline_study(
        deadline_slots=1500,
        heuristics=("emct*", "mct", "ud*", "random"),
        scenario_count=3,
        trials=2,
        proactive=False,
    )
    print(render_deadline_study(base))

    print("\nsame instances with proactive termination enabled:\n")
    proactive = run_deadline_study(
        deadline_slots=1500,
        heuristics=("emct*", "mct", "ud*", "random"),
        scenario_count=3,
        trials=2,
        proactive=True,
    )
    print(render_deadline_study(proactive))

    rows = []
    for name in ("emct*", "mct", "ud*", "random"):
        rows.append(
            (
                name,
                base.mean_iterations(name),
                proactive.mean_iterations(name),
            )
        )
    print()
    print(
        format_table(
            ["Algorithm", "iterations (dynamic)", "iterations (proactive)"],
            rows,
            title="effect of proactive termination (higher is better)",
        )
    )
    print("\nthe paper predicts proactivity matters most when m is small and")
    print("the last tasks of an iteration sit on preempted processors;")
    print("elsewhere it should be neutral.")


if __name__ == "__main__":
    main()
