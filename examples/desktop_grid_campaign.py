#!/usr/bin/env python
"""A miniature Table 2-style campaign on synthetic desktop-grid scenarios.

Reproduces the paper's evaluation protocol end to end at toy scale:
generate random scenarios per the Section 7 recipe, run a set of
heuristics on paired availability samples, and report average
degradation-from-best with win counts — the same aggregates as the
paper's Table 2, plus a dfb-vs-wmin mini Figure 2.

The campaign runs on the multiprocessing execution backend (DESIGN.md
§4) — swap ``backend="process"`` for ``"serial"`` or drop it entirely
and the statistics come out bit-identical, just slower on multi-core
machines.

Run:  python examples/desktop_grid_campaign.py [scenarios_per_cell]
(defaults to 2; the paper uses 247 with 10 trials)
"""

import sys

from repro.analysis.plotting import ascii_plot, format_table
from repro.experiments.figure2 import run_figure2
from repro.experiments.harness import CampaignConfig, run_campaign
from repro.workload.scenarios import ScenarioGenerator

HEURISTICS = ("emct*", "emct", "mct", "ud*", "lw*", "random2w", "random")


def main() -> None:
    per_cell = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    print(f"running mini-campaign: {per_cell} scenario(s)/cell, 2 trials,")
    print(f"heuristics: {', '.join(HEURISTICS)}")
    generator = ScenarioGenerator(7)
    scenarios = list(
        generator.grid(
            per_cell,
            n_values=(5, 20),
            ncom_values=(5,),
            wmin_values=(1, 5),
        )
    )
    result = run_campaign(
        scenarios,
        CampaignConfig(heuristics=HEURISTICS, trials=2),
        backend="process",
    )

    rows = [
        (name, dfb, wins) for name, dfb, wins in result.accumulator.table()
    ]
    print()
    print(
        format_table(
            ["Algorithm", "avg dfb (%)", "wins"],
            rows,
            title=f"mini Table 2 over {result.instances} instances",
        )
    )

    print("\nmini Figure 2 (dfb vs wmin, separate quick campaign):")
    fig = run_figure2(
        scenarios_per_cell=per_cell,
        trials=1,
        heuristics=("mct", "emct", "ud*"),
        n_values=(10,),
        ncom_values=(5,),
        wmin_values=(1, 3, 5, 8),
        seed=7,
    )
    print(
        ascii_plot(
            fig.series(),
            list(fig.wmin_values),
            title="average dfb vs wmin",
            x_label="wmin",
            height=12,
            width=48,
        )
    )


if __name__ == "__main__":
    main()
