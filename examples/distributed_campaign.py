#!/usr/bin/env python
"""The distributed campaign service surviving a fault storm (DESIGN.md §13).

Runs a miniature Table 2-style campaign three times over the same
scenarios:

1. serially — the reference statistics;
2. on ``--backend distributed`` with an injected *coordinator kill*
   partway through, leaving per-shard checkpoint journals behind;
3. resumed over those journals with a deliberately unreliable fleet —
   one worker crashes mid-unit, one delivers every result twice — and
   still finishing with statistics **bit-identical** to the serial run.

Along the way it prints the ``campaign-status`` view a second terminal
would see (``repro-experiments campaign-status <dir>``), and the
coordinator's fault counters: units re-issued after the crash,
duplicates dropped, units restored from the journals.

Run:  python examples/distributed_campaign.py [scenarios_per_cell]
(defaults to 1; the service scales to external workers via
``repro-experiments coordinator`` / ``worker``)
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.plotting import format_table
from repro.experiments.distributed import (
    CampaignWorker,
    CoordinatorKilled,
    DistributedBackend,
    FaultPlan,
    FaultyWorker,
    campaign_status,
    render_campaign_status,
)
from repro.experiments.harness import CampaignConfig, run_campaign
from repro.workload.scenarios import ScenarioGenerator

HEURISTICS = ("emct*", "emct", "mct", "random")


def unreliable_fleet(address, slot):
    """Worker 0 crashes on its first delivery; worker 1 sends doubles."""
    if slot == 0:
        return FaultyWorker(
            address,
            plan=FaultPlan(crash_before_delivery=0),
            worker_id="crashy",
        )
    if slot == 1:
        return FaultyWorker(
            address,
            plan=FaultPlan(duplicate_results=True),
            worker_id="chatty",
        )
    return CampaignWorker(address, worker_id=f"steady-{slot}")


def main() -> None:
    per_cell = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    scenarios = list(
        ScenarioGenerator(7).grid(
            per_cell, n_values=(5, 10), ncom_values=(5,), wmin_values=(1, 5)
        )
    )
    config = CampaignConfig(heuristics=HEURISTICS, trials=2)
    total = len(scenarios) * config.trials
    print(
        f"campaign: {len(scenarios)} scenarios x {config.trials} trials = "
        f"{total} units, heuristics: {', '.join(HEURISTICS)}"
    )

    serial = run_campaign(scenarios, config, backend="serial")

    with tempfile.TemporaryDirectory(prefix="repro-example-") as tmp:
        checkpoint_dir = Path(tmp) / "campaign"

        print("\n--- run 1: coordinator killed mid-campaign ---")
        killed = DistributedBackend(
            jobs=2,
            chunk_size=1,
            checkpoint_dir=checkpoint_dir,
            stop_after_units=total // 2,
        )
        try:
            run_campaign(scenarios, config, backend=killed)
        except CoordinatorKilled as exc:
            print(f"coordinator died: {exc}")
        print("\nwhat a second terminal sees (campaign-status):")
        print(render_campaign_status(campaign_status(checkpoint_dir)))

        print("\n--- run 2: resume with an unreliable fleet ---")
        resumed_backend = DistributedBackend(
            jobs=3,
            chunk_size=1,
            lease_timeout=10.0,
            checkpoint_dir=checkpoint_dir,
            worker_factory=unreliable_fleet,
        )
        resumed = run_campaign(scenarios, config, backend=resumed_backend)
        stats = resumed_backend.last_stats
        print(
            f"restored from journals: {stats.units_restored}   "
            f"executed live: {stats.units_executed}"
        )
        print(
            f"re-issued after faults: {stats.reissues}   "
            f"duplicates dropped: {stats.duplicates_dropped}   "
            f"worker disconnects: {stats.worker_disconnects}"
        )
        print("\nfinal campaign-status:")
        print(render_campaign_status(campaign_status(checkpoint_dir)))

    identical = (
        resumed.records == serial.records
        and resumed.accumulator == serial.accumulator
    )
    print(
        "\nstatistics bit-identical to the serial run: "
        f"{'YES' if identical else 'NO'}"
    )
    if not identical:
        raise SystemExit(1)

    rows = [(name, round(dfb, 2), wins) for name, dfb, wins
            in resumed.accumulator.table()]
    print()
    print(
        format_table(
            ["Algorithm", "avg dfb (%)", "wins"],
            rows,
            title=f"mini Table 2 over {resumed.instances} instances "
                  "(survived kill + crash + duplicates)",
        )
    )


if __name__ == "__main__":
    main()
