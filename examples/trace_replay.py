#!/usr/bin/env python
"""Trace-driven scheduling: FTA-style archives and model mismatch.

The paper's future work points at replacing the Markov assumption with
real availability traces (Failure Trace Archive).  This example exercises
that whole code path:

1. synthesise an FTA-shaped archive from two ground truths — the paper's
   Markov model and a heavy-tailed Weibull process (what real desktop
   grids look like, per the measurement studies the paper cites);
2. save it to disk and load it back (the archive format round trip);
3. replay the loaded traces through the simulator while the heuristics
   keep believing a fitted Markov chain — i.e. a *model mismatch* study:
   does EMCT*'s edge over MCT survive when the world is not Markovian?

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import IterativeApplication, Platform, Processor, make_scheduler
from repro.core.markov import MarkovAvailabilityModel, paper_random_model
from repro.sim.availability import MarkovSource, WeibullSource
from repro.sim.master import MasterSimulator
from repro.workload.traces import TraceArchive, synthesize_archive

P = 12
TRACE_SLOTS = 60_000


def fit_markov_belief(states: np.ndarray) -> MarkovAvailabilityModel:
    """Fit a 3-state chain to a trace by transition counting.

    This is what a real deployment would do: estimate the nine transition
    probabilities from observed host history (with add-one smoothing so no
    transition has probability exactly zero).
    """
    counts = np.ones((3, 3))  # Laplace smoothing
    for a, b in zip(states[:-1], states[1:]):
        counts[int(a), int(b)] += 1
    return MarkovAvailabilityModel(counts / counts.sum(axis=1, keepdims=True))


def make_archive(kind: str, path: Path) -> None:
    rng_root = np.random.default_rng(2011)
    sources = []
    for q in range(P):
        if kind == "markov":
            model = paper_random_model(np.random.default_rng(100 + q))
            sources.append(MarkovSource(model, np.random.default_rng(200 + q)))
        else:
            sources.append(
                WeibullSource(
                    shape=0.6,           # heavy tail, as measured on real grids
                    scale=float(rng_root.uniform(20, 80)),
                    mean_reclaimed=float(rng_root.uniform(5, 20)),
                    mean_down=float(rng_root.uniform(10, 40)),
                    p_up_to_reclaimed=0.7,
                    rng=np.random.default_rng(300 + q),
                )
            )
    synthesize_archive(sources, TRACE_SLOTS).save(path)


def replay(path: Path, heuristic: str) -> int:
    archive = TraceArchive.load(path)
    processors = []
    for q, host in enumerate(archive.hosts):
        states = host.to_states()
        processors.append(
            Processor.from_trace(
                q,
                speed_w=3,
                trace=states,
                belief=fit_markov_belief(states[:5000]),  # "historical" window
            )
        )
    platform = Platform(processors, ncom=4)
    app = IterativeApplication(
        tasks_per_iteration=12, iterations=10, t_prog=8, t_data=2
    )
    sim = MasterSimulator(
        platform, app, make_scheduler(heuristic), rng=np.random.default_rng(1)
    )
    report = sim.run(max_slots=TRACE_SLOTS)
    return report.makespan if report.makespan is not None else -1


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        for kind in ("markov", "weibull"):
            path = Path(tmp) / f"{kind}.json"
            make_archive(kind, path)
            loaded = TraceArchive.load(path)
            avail = np.mean([h.availability_fraction() for h in loaded.hosts])
            print(f"== {kind} ground truth "
                  f"({len(loaded)} hosts, mean UP fraction {avail:.2f}) ==")
            results = {}
            for heuristic in ("mct", "emct*", "ud*", "random"):
                results[heuristic] = replay(path, heuristic)
            best = min(v for v in results.values() if v > 0)
            for name, makespan in sorted(results.items(), key=lambda kv: kv[1]):
                if makespan < 0:
                    print(f"  {name:<8} did not finish")
                else:
                    dfb = 100.0 * (makespan - best) / best
                    print(f"  {name:<8} makespan {makespan:>6}  dfb {dfb:6.2f}%")
            print()
    print("note: the heuristics' beliefs were *fitted* Markov chains; on the")
    print("Weibull archive the world is non-memoryless, so this is the")
    print("model-mismatch experiment the paper proposes as future work.")


if __name__ == "__main__":
    main()
