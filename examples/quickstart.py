#!/usr/bin/env python
"""Quickstart: run one iterative application on a volatile desktop grid.

Builds the paper's canonical setting — 20 volatile processors whose
availability follows the 3-state Markov model — and executes a 10-iteration
master–worker application under the paper's best heuristic (EMCT*),
printing the makespan and resource-usage summary, then compares a few
heuristics on the identical availability sample.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import (
    IterativeApplication,
    Platform,
    Processor,
    RngFactory,
    make_scheduler,
    paper_random_model,
    simulate,
)


def build_platform(factory: RngFactory, p: int = 20, ncom: int = 5) -> Platform:
    """A 20-processor desktop grid drawn from the paper's distribution."""
    processors = []
    for q in range(p):
        model = paper_random_model(factory.generator("chain", q))
        speed = int(factory.generator("speed", q).integers(2, 20, endpoint=True))
        processors.append(
            Processor.from_markov(q, speed, model, factory.generator("avail", q))
        )
    return Platform(processors, ncom=ncom)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    app = IterativeApplication(
        tasks_per_iteration=20,  # m tasks per iteration
        iterations=10,           # the paper's evaluation fixes 10
        t_prog=10,               # program transfer: 10 slots
        t_data=2,                # task input transfer: 2 slots
    )

    print("== one run under EMCT* ==")
    factory = RngFactory(seed)
    from repro.analysis.gantt import render_gantt
    from repro.sim import MasterSimulator, TimelineRecorder

    platform = build_platform(factory)
    timeline = TimelineRecorder(len(platform))
    sim = MasterSimulator(
        platform,
        app,
        make_scheduler("emct*"),
        rng=factory.generator("sched", "emct*"),
        timeline=timeline,
    )
    report = sim.run()
    print(report.summary())
    print(f"per-iteration slots: {report.iteration_durations}")
    print("\nfirst 80 slots of the schedule (workers P0-P9):")
    print(render_gantt(timeline, width=80, workers=list(range(10))))

    print("\n== heuristic comparison on the same availability sample ==")
    results = {}
    for name in ("emct*", "mct", "ud*", "lw", "random", "random2w"):
        # Rebuilding from the same factory keys replays identical traces:
        # the comparison is paired, exactly like the paper's dfb metric.
        factory = RngFactory(seed)
        report = simulate(
            build_platform(factory),
            app,
            make_scheduler(name),
            rng=factory.generator("sched", name),
        )
        results[name] = report.makespan
    best = min(results.values())
    for name, makespan in sorted(results.items(), key=lambda kv: kv[1]):
        dfb = 100.0 * (makespan - best) / best
        print(f"  {name:<10} makespan {makespan:>6}  dfb {dfb:6.2f}%")


if __name__ == "__main__":
    main()
