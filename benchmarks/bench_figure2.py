"""Figure 2 regeneration benchmark (exp. id ``figure2``).

Reduced-scale dfb-vs-wmin sweep for the six heuristics the paper plots.
Prints the ASCII figure.  Robust shape assertion at smoke scale: the
expectation-aware EMCT gains on plain MCT as wmin grows (the paper's
crossover around wmin ≈ 3) — asserted as "EMCT's dfb advantage over MCT
at the top of the wmin range is at least its advantage at the bottom,
minus noise slack".
"""

from repro.experiments.figure2 import render_figure2, run_figure2

WMIN_VALUES = (1, 3, 5, 8, 10)


def test_figure2_regeneration(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_figure2(
            scenarios_per_cell=1 * scale,
            trials=2,
            n_values=(10, 20),
            ncom_values=(5,),
            wmin_values=WMIN_VALUES,
            seed=12061,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure2(result))

    series = result.series()
    assert set(series) == {"mct", "mct*", "emct", "emct*", "ud*", "lw*"}
    for values in series.values():
        assert len(values) == len(WMIN_VALUES)
        assert all(v >= 0 for v in values)

    # Shape: averaged over the top half of the wmin range, EMCT should be
    # no worse relative to MCT than on the bottom half (its advantage is
    # supposed to *grow* with wmin).
    half = len(WMIN_VALUES) // 2
    low_gap = sum(series["mct"][:half]) - sum(series["emct"][:half])
    high_gap = sum(series["mct"][half:]) - sum(series["emct"][half:])
    assert high_gap >= low_gap - 10.0  # noise slack at smoke scale
