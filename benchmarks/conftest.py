"""Shared configuration for the benchmark harness.

Scale control: the environment variable ``REPRO_BENCH_SCALE`` multiplies
the scenario/trial counts of the campaign benchmarks (default 1 — a
laptop-friendly smoke scale; the paper's full protocol corresponds to
roughly scale 120 and hours of CPU time).
"""

import os

import pytest


def bench_scale() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()
