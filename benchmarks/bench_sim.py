"""Simulator-core stepping + scheduling + body + gating benchmark (``bench-sim``).

Measures the per-run hot path of :class:`~repro.sim.master.MasterSimulator`
on a declared sample of the paper's Table 2 grid, and emits a JSON document
so successive PRs accumulate a perf trajectory::

    PYTHONPATH=src python benchmarks/bench_sim.py --out BENCH_sim.json

Four comparisons are timed, over the same (cell, scenario, trial,
heuristic, objective) population, all within one process with the
configurations interleaved per run (the only timing methodology that
survives noisy shared runners):

* **stepping** — the slot-stepped oracle loop vs the span-stepped default
  (DESIGN.md §6), both on the array scheduler API and array instance
  store;
* **scheduling API** — the legacy scalar scheduler path vs the
  array-backed batch path (incrementally maintained ``RoundState`` +
  vectorised ``score_batch``, DESIGN.md §8), both span-stepped on the
  array store.  The scheduling-round time is measured directly by
  wrapping the round driver, so each cell reports ``round_time_share``
  and ``rounds_per_sec`` for both APIs plus their ratio ``sched_speedup``;
* **instance store / simulator body** — the legacy Python-list instance
  store vs the structure-of-arrays ``InstanceTable`` with the vectorised
  body (DESIGN.md §9), both span-stepped on the array scheduler API.
  ``store_speedup`` is the end-to-end ratio; ``body_speedup`` compares
  the *body* seconds (wall-clock minus the measured round seconds);
* **round-relevance gating** — the exact elision tier
  (``round_relevance="exact"``, the default) vs the always-execute oracle
  (``"off"``), DESIGN.md §10.  Each cell reports ``rounds_elided``,
  ``elision_share`` (elided / executed rounds) and ``elision_speedup``
  (end-to-end off/exact ratio).  HONEST NOTE: the exact tier's proof
  obligation *is* a placement computation — determinism means the only
  sound proof re-scores and compares — so elision skips only the round's
  mutation phase (queue purges, replica drop/recreate churn, table ops),
  and the measured end-to-end ratio sits near 1.0; its value is the
  proven round-skip count and the policy machinery it anchors.  The big
  replan-trigger wins require *relaxed* semantics, which are not
  bit-identical — see the ``relaxed_policy`` row below and
  ``experiments/replan_study.py`` for their validation.

A **long-horizon deadline cell** (``run_slots`` over ≥100k slots) rides
along to exercise the run-length-encoded availability sources where the
dense representation hurts most; its row reports the same store/body
metrics plus the measured ``trace_compression``.

**Large-platform cells** (DESIGN.md §12) time the event-calendar
platform engine (``platform_index="calendar"``) against the O(p)
per-boundary sweep oracle on the seed-stable ``large_grid_scenario``
family at p = 1k and 10k (plus an optional calendar-only p = 100k row,
``--largep-xl``), asserting bit-identical reports before any number is
reported.  Each row records ``slots_per_sec`` for both arms, the live
RLE ``bytes_per_worker``, and the per-boundary touched-worker counts
that explain the ratio (the sweep touches all p by construction; the
calendar touches only the churn).  ``--largep-smoke`` swaps in a fast
p = 2000 short-horizon cell for CI runners.

A **stacked-rounds row** (DESIGN.md §14) times one R = 16 cohort on the
paper midpoint cell with the stacked-round driver on vs off, asserting
bit-identical reports first.  HONEST NOTE: the measured ratio sits
*below* parity (~0.92) — the per-run incremental caches (§10 elision
probe reuse, §12 row stores, the persistent delta cache) already absorb
the scoring work the stacked pass fuses, and the pause/resume seam taxes
every scheduling round; the row records ``rows_scored_stacked`` to prove
the driver really served the cohort, and its gate bounds the seam tax
rather than claiming a speedup.

A **relaxed-policy row** (recorded, never gated) times one cell under
``replan_policy="sticky"`` against the event-driven default and records
the speedup *and* the makespan deviation it buys — relaxed policies
change the science, so their numbers are documentation, not a gate.

Every simulated instance is asserted **bit-identical** across the five
bit-exact configurations before any number is reported; both objectives
are covered (``run`` for the makespan protocol, ``run_slots`` for the
Section 3.4 deadline form).  A speedup that changed the science would be
worthless.

**Noise gating** (PR 5): sub-second cells are wall-clock-noise-limited on
shared runners (the (5,5,1) cell simulates ~0.03 s per configuration), so
cells whose measured span seconds fall below ``NOISE_FLOOR_SECONDS`` are
recorded as usual but marked ``"gated": false`` and excluded from every
ratio-based CI gate; the overall gate ratios aggregate the gated cells
only.

CI gates: ``--min-speedup`` (default 0.95) fails the job when span mode
falls measurably below slot mode on the gated cells (the two are at
structural parity on churn-dense cells and the margin absorbs shared-
runner noise); ``--min-sched-speedup``
(default 1.0) fails it when the batch scheduler path regresses below the
legacy scalar path; ``--min-body-speedup`` (default 1.0) fails it when
the array instance store's body regresses below the legacy list store;
``--min-elision-speedup`` (default 0.95) fails it when the exact elision
tier costs measurable wall-clock instead of being free (the probe-stash
reuse landed the gated-cell ratio at ~0.99);
``--min-stacked-speedup`` (default 0.85) fails it when the stacked-round
driver regresses further below the plain cohort engine on its gated
cell;
``--min-trace-compression`` (default 6.0) fails it when the RLE sources
stop beating the dense representation on the long-horizon cell;
``--min-largep-speedup`` (default 1.0) fails it when the event-calendar
platform engine falls below that ratio over the sweep oracle on the
largest gated large-platform cell; ``--max-largep-bytes-per-worker``
(default 1024) fails it when the live RLE availability storage per
worker regresses past that ceiling.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.heuristics.registry import make_scheduler
from repro.core.markov import MarkovAvailabilityModel
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.types import ProcState
from repro.workload.scenarios import ScenarioGenerator

#: The measured Table 2 sample: one cell per (n, wmin) regime — small
#: communication-light, the paper's midpoint, and the large
#: compute-dominated corner — plus a replication-heavy small-n cell.
TABLE2_SAMPLE: Tuple[Tuple[int, int, int], ...] = (
    (5, 5, 1),
    (20, 10, 5),
    (5, 10, 10),
    (40, 20, 10),
)

HEURISTICS: Tuple[str, ...] = ("emct*", "mct")
DEADLINE_SLOTS = 2000

#: Cells whose best-of span seconds fall below this are wall-clock noise
#: on shared runners: recorded, but excluded from ratio-based CI gates.
NOISE_FLOOR_SECONDS = 0.15

#: Long-horizon deadline cell (satellite): ``run_slots`` over a horizon
#: long enough that dense availability storage (1 B/slot trace + 8 B/slot
#: UP prefix) would dominate memory; exercises the RLE representation.
LONG_DEADLINE_CELL: Tuple[int, int, int] = (5, 5, 1)
LONG_DEADLINE_SLOTS = 150_000

#: The relaxed-policy documentation row: one cell, one policy.
RELAXED_POLICY = "sticky"
RELAXED_CELL: Tuple[int, int, int] = (20, 10, 5)

#: Batch-engine cells (DESIGN.md §11): the paper midpoint and the large
#: compute-dominated corner, at two cohort sizes.  A cohort of R is
#: ``R / len(HEURISTICS)`` trials × the benchmark heuristics, so runs
#: within a trial share ground-truth traces and all runs of the scenario
#: share belief columns — the production campaign shape.
BATCH_CELLS: Tuple[Tuple[int, int, int], ...] = ((20, 10, 5), (40, 20, 10))
BATCH_COHORTS: Tuple[int, ...] = (4, 16)

#: Stacked-round cells (DESIGN.md §14): the cohort engine with the
#: stacked-round driver on vs off, at the paper midpoint and R=16 — the
#: cohort shape whose rounds the driver scores in one (R, p) pass.
STACKED_CELL: Tuple[int, int, int] = (20, 10, 5)
STACKED_COHORT = 16

#: Large-platform calendar cells (DESIGN.md §12): the platform event
#: calendar vs the O(p)-per-boundary sweep oracle on the seed-stable
#: ``large_grid_scenario`` family (semi-Markov O(runs) ground truth,
#: mean sojourn ~1000 slots).  The shape is compute-dominated
#: (``wmin=30``) under the sticky replan policy, so span boundaries —
#: the platform layer's own cost — dominate the shared scheduler work
#: and the ratio isolates the engine under comparison.
LARGEP_CELL = {"n": 40, "ncom": 10, "wmin": 30, "mean_sojourn": 1000}
LARGEP_ITERATIONS = 3
LARGEP_SIZES: Tuple[int, ...] = (1_000, 10_000)
#: The 100k-worker row is calendar-only: the sweep oracle's O(p) per
#: boundary makes timing it there pointless (minutes for a number whose
#: trend the 1k/10k rows already pin); identity at 100k is still covered
#: by the shared traces (same family, same draws) and the 1k/10k rows.
LARGEP_XL_SIZE = 100_000
LARGEP_MAX_SLOTS = 50_000
LARGEP_HEURISTIC = "mct"
LARGEP_POLICY = "sticky"
#: CI smoke variant: small enough for a shared runner, still above the
#: vectorisation threshold and still span-boundary-dominated.
LARGEP_SMOKE_SIZE = 2_000
LARGEP_SMOKE_MAX_SLOTS = 6_000

#: (step_mode, scheduler_api, instance_store, round_relevance)
#: configurations per run.  The first is the bit-identity reference; the
#: second is the default.
CONFIGS: Tuple[Tuple[str, str, str, str], ...] = (
    ("slot", "array", "array", "exact"),
    ("span", "array", "array", "exact"),
    ("span", "legacy", "array", "exact"),
    ("span", "array", "legacy", "exact"),
    ("span", "array", "array", "off"),
)

DEFAULT = ("span", "array", "array", "exact")
LEGACY_STORE = ("span", "array", "legacy", "exact")
LEGACY_API = ("span", "legacy", "array", "exact")
SLOT = ("slot", "array", "array", "exact")
RELEVANCE_OFF = ("span", "array", "array", "off")


def _simulate(scenario, trial: int, heuristic: str, config, objective: str,
              deadline_slots: int = DEADLINE_SLOTS,
              replan_policy: str = "event"):
    mode, api, store, relevance = config
    platform = scenario.build_platform(trial)
    sim = MasterSimulator(
        platform,
        scenario.app,
        make_scheduler(heuristic, platform=platform),
        options=SimulatorOptions(
            step_mode=mode,
            scheduler_api=api,
            instance_store=store,
            round_relevance=relevance,
            replan_policy=replan_policy,
        ),
        rng=scenario.scheduler_rng(trial, heuristic),
    )
    # Wrap the round driver so the scheduling share of wall-clock is
    # measured directly (includes the triviality check and context
    # refresh/build — the full per-round cost any configuration pays).
    round_clock = {"seconds": 0.0}
    inner_round = sim._scheduling_round

    def timed_round(slot, states):
        begin = time.perf_counter()
        inner_round(slot, states)
        round_clock["seconds"] += time.perf_counter() - begin

    sim._scheduling_round = timed_round
    start = time.perf_counter()
    if objective == "run":
        report = sim.run(max_slots=500_000)
    else:
        report = sim.run_slots(deadline_slots)
    elapsed = time.perf_counter() - start
    trace_bytes = sum(
        proc.availability.storage_bytes() for proc in platform
    )
    dense_bytes = sum(
        proc.availability.dense_bytes() for proc in platform
    )
    return {
        "report": report,
        "elapsed": elapsed,
        "steps": sim.steps_executed,
        "round_seconds": round_clock["seconds"],
        "rounds_elided": sim.rounds_elided,
        "instance_ops": sim.instance_ops,
        "trace_bytes": trace_bytes,
        "dense_bytes": dense_bytes,
    }


def _mean_sojourn_bound(scenario) -> float:
    """Average per-processor UP sojourn of the cell's chains (slots)."""
    total = 0.0
    for model in scenario.models:
        assert isinstance(model, MarkovAvailabilityModel)
        total += model.mean_sojourn(ProcState.UP)
    return total / len(scenario.models)


def _bench_cell(
    generator: ScenarioGenerator,
    cell: Tuple[int, int, int],
    *,
    scenarios: int,
    trials: int,
    heuristics: Sequence[str],
    repetitions: int,
) -> Dict:
    n, ncom, wmin = cell
    population = [generator.scenario(n, ncom, wmin, i) for i in range(scenarios)]
    runs = [
        (scenario, trial, heuristic, objective)
        for scenario in population
        for trial in range(trials)
        for heuristic in heuristics
        for objective in ("run", "run_slots")
    ]
    best: Dict[tuple, Dict[str, float]] = {
        config: {"seconds": float("inf"), "round_seconds": float("inf")}
        for config in CONFIGS
    }
    # Non-timing totals (slots, rounds, ops, bytes) are identical across
    # repetitions — the simulations are deterministic — so the per-rep
    # recount simply overwrites them; only timings take the best-of.
    for _rep in range(max(1, repetitions)):
        rep = {
            config: {"seconds": 0.0, "round_seconds": 0.0} for config in CONFIGS
        }
        slots_total = 0
        boundaries_total = 0
        rounds_total = 0
        rounds_elided_total = 0
        instance_ops_total = 0
        trace_bytes_total = 0
        dense_bytes_total = 0
        for scenario, trial, heuristic, objective in runs:
            reports = {}
            for config in CONFIGS:
                out = _simulate(scenario, trial, heuristic, config, objective)
                reports[config] = out["report"]
                rep[config]["seconds"] += out["elapsed"]
                rep[config]["round_seconds"] += out["round_seconds"]
                if config == DEFAULT:
                    boundaries_total += out["steps"]
                    rounds_total += out["report"].scheduler_rounds
                    rounds_elided_total += out["rounds_elided"]
                    instance_ops_total += out["instance_ops"]
                    trace_bytes_total += out["trace_bytes"]
                    dense_bytes_total += out["dense_bytes"]
            reference = reports[CONFIGS[0]]
            for config, report in reports.items():  # pragma: no branch
                if report != reference:  # pragma: no cover
                    raise AssertionError(
                        f"configs diverged on cell {cell}, scenario "
                        f"{scenario.key}, trial {trial}, {heuristic}/"
                        f"{objective}: {CONFIGS[0]} vs {config}"
                    )
            slots_total += reference.slots_simulated
        # Wall-clock noise mitigation: best-of-N per configuration, keeping
        # each rep's (total, round) pair together so shares stay coherent.
        for config in CONFIGS:
            if rep[config]["seconds"] < best[config]["seconds"]:
                best[config] = rep[config]
    slot_s = best[SLOT]["seconds"]
    span_s = best[DEFAULT]["seconds"]
    legacy_api_s = best[LEGACY_API]["seconds"]
    legacy_store_s = best[LEGACY_STORE]["seconds"]
    relevance_off_s = best[RELEVANCE_OFF]["seconds"]
    array_round_s = best[DEFAULT]["round_seconds"]
    legacy_api_round_s = best[LEGACY_API]["round_seconds"]
    legacy_store_round_s = best[LEGACY_STORE]["round_seconds"]
    relevance_off_round_s = best[RELEVANCE_OFF]["round_seconds"]
    array_body_s = span_s - array_round_s
    legacy_store_body_s = legacy_store_s - legacy_store_round_s
    return {
        "cell": {"n": n, "ncom": ncom, "wmin": wmin},
        "runs": len(runs),
        "slots": slots_total,
        "gated": span_s >= NOISE_FLOOR_SECONDS,
        "slot_seconds": round(slot_s, 4),
        "span_seconds": round(span_s, 4),
        "legacy_api_seconds": round(legacy_api_s, 4),
        "legacy_store_seconds": round(legacy_store_s, 4),
        "relevance_off_seconds": round(relevance_off_s, 4),
        "slots_per_sec_slot": round(slots_total / slot_s, 1),
        "slots_per_sec_span": round(slots_total / span_s, 1),
        "slots_per_sec_legacy_store": round(slots_total / legacy_store_s, 1),
        "speedup": round(slot_s / span_s, 3),
        "rounds": rounds_total,
        "rounds_elided": rounds_elided_total,
        "elision_share": round(rounds_elided_total / max(rounds_total, 1), 3),
        "elision_speedup": round(relevance_off_s / span_s, 3),
        "round_seconds": {
            "array": round(array_round_s, 4),
            "legacy_api": round(legacy_api_round_s, 4),
            "legacy_store": round(legacy_store_round_s, 4),
            "relevance_off": round(relevance_off_round_s, 4),
        },
        "round_time_share": {
            "array": round(array_round_s / span_s, 3),
            "legacy_api": round(legacy_api_round_s / legacy_api_s, 3),
        },
        "rounds_per_sec": {
            "array": round(rounds_total / array_round_s, 1),
            "legacy_api": round(rounds_total / legacy_api_round_s, 1),
        },
        "sched_speedup": round(legacy_api_round_s / array_round_s, 3),
        # Simulator body (DESIGN.md §9): everything outside the rounds.
        "body_seconds": {
            "array": round(array_body_s, 4),
            "legacy_store": round(legacy_store_body_s, 4),
        },
        "body_time_share": {
            "array": round(array_body_s / span_s, 3),
            "legacy_store": round(legacy_store_body_s / legacy_store_s, 3),
        },
        "body_speedup": round(legacy_store_body_s / array_body_s, 3),
        "store_speedup": round(legacy_store_s / span_s, 3),
        "instance_ops": instance_ops_total,
        "trace_bytes": trace_bytes_total,
        "trace_dense_bytes": dense_bytes_total,
        "trace_compression": round(dense_bytes_total / trace_bytes_total, 2),
        "mean_span": round(slots_total / boundaries_total, 2),
        "mean_up_sojourn": round(
            sum(_mean_sojourn_bound(s) for s in population) / len(population), 1
        ),
    }


def _bench_long_deadline(
    generator: ScenarioGenerator,
    *,
    repetitions: int,
    heuristic: str = "emct*",
) -> Dict:
    """The ≥100k-slot deadline cell: RLE storage under a long horizon.

    Times only the two store configurations (the stepping/scheduling
    comparisons are covered by the Table 2 cells) and asserts their
    reports identical.  As in the deadline study, the iteration target is
    raised far beyond what the budget can fit, so the slot budget binds
    and the availability traces genuinely span the horizon.
    """
    n, ncom, wmin = LONG_DEADLINE_CELL
    scenario = generator.scenario(n, ncom, wmin, 0)
    scenario = dataclasses.replace(
        scenario,
        app=dataclasses.replace(scenario.app, iterations=1_000_000),
    )
    configs = (LEGACY_STORE, DEFAULT)
    best = {config: float("inf") for config in configs}
    default_out: Dict = {}
    for _rep in range(max(1, repetitions)):
        outs = {}
        for config in configs:
            outs[config] = _simulate(
                scenario, 0, heuristic, config, "run_slots",
                deadline_slots=LONG_DEADLINE_SLOTS,
            )
        if outs[DEFAULT]["report"] != outs[LEGACY_STORE]["report"]:
            raise AssertionError(  # pragma: no cover
                "store configurations diverged on the long deadline cell"
            )
        for config in configs:
            if outs[config]["elapsed"] < best[config]:
                best[config] = outs[config]["elapsed"]
        if not default_out:
            # Diagnostics (slots, ops, bytes) are deterministic across
            # repetitions; capture them once, timings take the best-of.
            default_out = outs[DEFAULT]
    slots = default_out["report"].slots_simulated
    return {
        "cell": {"n": n, "ncom": ncom, "wmin": wmin},
        "objective": "run_slots",
        "deadline_slots": LONG_DEADLINE_SLOTS,
        "heuristic": heuristic,
        "slots": slots,
        "span_seconds": round(best[DEFAULT], 4),
        "legacy_store_seconds": round(best[LEGACY_STORE], 4),
        "slots_per_sec_span": round(slots / best[DEFAULT], 1),
        "store_speedup": round(best[LEGACY_STORE] / best[DEFAULT], 3),
        "instance_ops": default_out["instance_ops"],
        "trace_bytes": default_out["trace_bytes"],
        "trace_dense_bytes": default_out["dense_bytes"],
        "trace_compression": round(
            default_out["dense_bytes"] / default_out["trace_bytes"], 2
        ),
    }


def _bench_relaxed_policy(
    generator: ScenarioGenerator,
    *,
    repetitions: int,
    scenarios: int,
    trials: int,
    heuristics: Sequence[str],
    policy: str = RELAXED_POLICY,
    cell: Tuple[int, int, int] = RELAXED_CELL,
) -> Dict:
    """One relaxed-policy cell, recorded but never gated (DESIGN.md §10).

    Relaxed policies change the replan-trigger semantics, so there is no
    bit-identity to assert; this row documents what the policy buys
    (wall-clock, round reduction) and what it costs (mean makespan
    deviation on the ``run`` objective) next to the event-driven default
    on the same population.  ``experiments/replan_study.py`` is the full
    validation against the paper's shape targets.
    """
    n, ncom, wmin = cell
    population = [generator.scenario(n, ncom, wmin, i) for i in range(scenarios)]
    runs = [
        (scenario, trial, heuristic)
        for scenario in population
        for trial in range(trials)
        for heuristic in heuristics
    ]
    best = {"event": float("inf"), policy: float("inf")}
    makespans = {"event": 0, policy: 0}
    rounds = {"event": 0, policy: 0}
    for _rep in range(max(1, repetitions)):
        rep = {"event": 0.0, policy: 0.0}
        mk = {"event": 0, policy: 0}
        rd = {"event": 0, policy: 0}
        for scenario, trial, heuristic in runs:
            for name in ("event", policy):
                out = _simulate(
                    scenario, trial, heuristic, DEFAULT, "run",
                    replan_policy=name,
                )
                rep[name] += out["elapsed"]
                report = out["report"]
                mk[name] += report.makespan or report.slots_simulated
                rd[name] += report.scheduler_rounds
        for name in ("event", policy):
            if rep[name] < best[name]:
                best[name] = rep[name]
        makespans, rounds = mk, rd
    return {
        "cell": {"n": n, "ncom": ncom, "wmin": wmin},
        "policy": policy,
        "runs": len(runs),
        "event_seconds": round(best["event"], 4),
        "policy_seconds": round(best[policy], 4),
        "policy_speedup": round(best["event"] / best[policy], 3),
        "event_rounds": rounds["event"],
        "policy_rounds": rounds[policy],
        "round_reduction": round(
            1.0 - rounds[policy] / max(rounds["event"], 1), 3
        ),
        "event_mean_makespan": round(makespans["event"] / len(runs), 1),
        "policy_mean_makespan": round(makespans[policy] / len(runs), 1),
        "makespan_deviation_pct": round(
            100.0 * (makespans[policy] - makespans["event"])
            / max(makespans["event"], 1),
            2,
        ),
        "gated": False,
    }


def _bench_batch_engine(
    generator: ScenarioGenerator,
    *,
    repetitions: int,
    heuristics: Sequence[str] = HEURISTICS,
    cells: Sequence[Tuple[int, int, int]] = BATCH_CELLS,
    cohorts: Sequence[int] = BATCH_COHORTS,
) -> Dict:
    """Batch cohort engine vs. the per-run oracle (DESIGN.md §11).

    Each row times R runs of one scenario — ``R / len(heuristics)``
    trials × the benchmark heuristics — executed (a) independently and
    (b) as one :class:`~repro.sim.batch_engine.BatchCampaignRunner`
    cohort.  Per-run makespans and slot counts are asserted identical
    before any timing counts; rows below the noise floor are recorded
    but excluded from the overall ratio.
    """
    from repro.sim.batch_engine import BatchCampaignRunner, BatchRunSpec

    def run_standalone(spec):
        platform = spec.scenario.build_platform(spec.trial)
        sim = MasterSimulator(
            platform,
            spec.scenario.app,
            make_scheduler(spec.heuristic, platform=platform),
            rng=spec.scenario.scheduler_rng(spec.trial, spec.heuristic),
        )
        return sim.run(max_slots=spec.max_slots)

    rows: List[Dict] = []
    for cell in cells:
        n, ncom, wmin = cell
        scenario = generator.scenario(n, ncom, wmin, 0)
        for cohort in cohorts:
            trial_count = max(1, cohort // len(heuristics))
            specs = [
                BatchRunSpec(scenario=scenario, trial=trial, heuristic=heuristic)
                for trial in range(trial_count)
                for heuristic in heuristics
            ]
            best = {"per-run": float("inf"), "batch": float("inf")}
            for _rep in range(max(1, repetitions)):
                start = time.perf_counter()
                per_run_reports = [run_standalone(spec) for spec in specs]
                per_run_s = time.perf_counter() - start
                start = time.perf_counter()
                # stack_rounds pinned off: this section measures the §11
                # cohort engine itself; the stacked-round driver has its
                # own section (and gate) below.
                batch_reports = BatchCampaignRunner(
                    specs, stack_rounds=False
                ).run()
                batch_s = time.perf_counter() - start
                for spec, ref, got in zip(specs, per_run_reports, batch_reports):
                    if (
                        got.makespan != ref.makespan
                        or got.slots_simulated != ref.slots_simulated
                    ):  # pragma: no cover - would be an engine bug
                        raise AssertionError(
                            f"batch engine diverged on {cell} "
                            f"trial={spec.trial} {spec.heuristic}: "
                            f"{got.makespan} != {ref.makespan}"
                        )
                best["per-run"] = min(best["per-run"], per_run_s)
                best["batch"] = min(best["batch"], batch_s)
            rows.append(
                {
                    "cell": {"n": n, "ncom": ncom, "wmin": wmin},
                    "cohort": len(specs),
                    "per_run_seconds": round(best["per-run"], 4),
                    "batch_seconds": round(best["batch"], 4),
                    "per_run_rate": round(len(specs) / best["per-run"], 3),
                    "batch_rate": round(len(specs) / best["batch"], 3),
                    "batch_speedup": round(best["per-run"] / best["batch"], 3),
                    "gated": best["per-run"] >= NOISE_FLOOR_SECONDS,
                }
            )
    gated = [row for row in rows if row["gated"]] or rows
    per_run_total = sum(row["per_run_seconds"] for row in gated)
    batch_total = sum(row["batch_seconds"] for row in gated)
    return {
        "cells": [list(cell) for cell in cells],
        "cohorts": list(cohorts),
        "heuristics": list(heuristics),
        "results": rows,
        "per_run_seconds_total": round(per_run_total, 4),
        "batch_seconds_total": round(batch_total, 4),
        "batch_speedup": round(per_run_total / batch_total, 3),
        "reports_identical": True,
    }


def _bench_stacked_rounds(
    generator: ScenarioGenerator,
    *,
    repetitions: int,
    heuristics: Sequence[str] = HEURISTICS,
    cell: Tuple[int, int, int] = STACKED_CELL,
    cohort: int = STACKED_COHORT,
) -> Dict:
    """Stacked-round driver vs. the plain cohort engine (DESIGN.md §14).

    Times one R-run cohort with ``stack_rounds`` on and off; reports are
    asserted bit-identical before timings count.  The honest ratio sits
    *below* 1.0 (~0.92 measured): the per-run incremental round caches
    (§10 elision, §12 row stores, the persistent delta cache) already
    absorb the scoring work the stacked pass fuses, and the pause/resume
    seam taxes every scheduling round — the measured decomposition (seam
    cost vs. driver value, free-seam ceiling ~1.05x) is in DESIGN.md
    §14.  The gate guards the seam against regressing further, and
    ``rows_scored_stacked`` documents that the driver really served the
    cohort (0 would mean every member fell back per-run).
    """
    from repro.sim.batch_engine import BatchCampaignRunner, BatchRunSpec

    n, ncom, wmin = cell
    scenario = generator.scenario(n, ncom, wmin, 0)
    trial_count = max(1, cohort // len(heuristics))
    specs = [
        BatchRunSpec(scenario=scenario, trial=trial, heuristic=heuristic)
        for trial in range(trial_count)
        for heuristic in heuristics
    ]
    best = {"cohort": float("inf"), "stacked": float("inf")}
    rows_scored = 0
    demotions = 0
    for _rep in range(max(1, repetitions)):
        start = time.perf_counter()
        base_reports = BatchCampaignRunner(specs, stack_rounds=False).run()
        cohort_s = time.perf_counter() - start
        runner = BatchCampaignRunner(specs, stack_rounds=True)
        start = time.perf_counter()
        stacked_reports = runner.run()
        stacked_s = time.perf_counter() - start
        rows_scored = runner.rows_scored_stacked
        demotions = runner.demotions
        for spec, ref, got in zip(specs, base_reports, stacked_reports):
            if (
                got.makespan != ref.makespan
                or got.slots_simulated != ref.slots_simulated
                or got.scheduler_rounds != ref.scheduler_rounds
            ):  # pragma: no cover - would be an engine bug
                raise AssertionError(
                    f"stacked rounds diverged on {cell} "
                    f"trial={spec.trial} {spec.heuristic}: "
                    f"{got.makespan} != {ref.makespan}"
                )
        best["cohort"] = min(best["cohort"], cohort_s)
        best["stacked"] = min(best["stacked"], stacked_s)
    return {
        "cell": {"n": n, "ncom": ncom, "wmin": wmin},
        "cohort": len(specs),
        "heuristics": list(heuristics),
        "cohort_seconds": round(best["cohort"], 4),
        "stacked_seconds": round(best["stacked"], 4),
        "cohort_rate": round(len(specs) / best["cohort"], 3),
        "stacked_rate": round(len(specs) / best["stacked"], 3),
        "stacked_speedup": round(best["cohort"] / best["stacked"], 3),
        "rows_scored_stacked": rows_scored,
        "demotions": demotions,
        "gated": best["cohort"] >= NOISE_FLOOR_SECONDS,
        "reports_identical": True,
    }


def _bench_large_platform(
    *,
    seed: int,
    repetitions: int,
    sizes: Sequence[int] = LARGEP_SIZES,
    max_slots: int = LARGEP_MAX_SLOTS,
    include_xl: bool = False,
    heuristic: str = LARGEP_HEURISTIC,
    policy: str = LARGEP_POLICY,
) -> Dict:
    """The large-platform engine cells (DESIGN.md §12).

    Each row runs one ``large_grid_scenario`` cell end-to-end under both
    platform indexes, asserts the reports bit-identical, and reports the
    end-to-end ratio plus the per-boundary operation counts that explain
    it: the sweep touches all ``p`` workers per boundary by construction,
    the calendar touches only the churn.  ``bytes_per_worker`` is the
    live RLE availability storage per worker — the memory contract that
    makes 100k workers feasible at all.
    """

    def simulate(scenario, platform_index):
        platform = scenario.build_platform(0)
        sim = MasterSimulator(
            platform,
            scenario.app,
            make_scheduler(heuristic, platform=platform),
            options=SimulatorOptions(
                platform_index=platform_index, replan_policy=policy
            ),
            rng=scenario.scheduler_rng(0, heuristic),
        )
        start = time.perf_counter()
        report = sim.run(max_slots=max_slots)
        elapsed = time.perf_counter() - start
        trace_bytes = sum(
            proc.availability.storage_bytes() for proc in platform
        )
        return report, elapsed, dict(sim.op_counts), trace_bytes

    rows: List[Dict] = []
    all_sizes = list(sizes) + ([LARGEP_XL_SIZE] if include_xl else [])
    for p in all_sizes:
        generator = ScenarioGenerator(seed, p=p, iterations=LARGEP_ITERATIONS)
        scenario = generator.large_grid_scenario(
            LARGEP_CELL["n"], LARGEP_CELL["ncom"], LARGEP_CELL["wmin"], 0,
            mean_sojourn=LARGEP_CELL["mean_sojourn"],
        )
        xl = p not in sizes
        arms = ("calendar",) if xl else ("sweep", "calendar")
        best = {arm: float("inf") for arm in arms}
        outs: Dict[str, tuple] = {}
        for _rep in range(max(1, repetitions)):
            for arm in arms:
                out = simulate(scenario, arm)
                outs[arm] = out
                best[arm] = min(best[arm], out[1])
            if not xl:
                if outs["sweep"][0] != outs["calendar"][0]:
                    raise AssertionError(  # pragma: no cover
                        f"platform indexes diverged on large-p cell p={p}"
                    )
        report, _, counts, trace_bytes = outs["calendar"]
        slots = report.slots_simulated
        boundaries = counts["boundaries"]
        cal_s = best["calendar"]
        row = {
            "p": p,
            "cell": dict(LARGEP_CELL, iterations=LARGEP_ITERATIONS),
            "heuristic": heuristic,
            "replan_policy": policy,
            "max_slots": max_slots,
            "makespan": report.makespan,
            "slots": slots,
            "boundaries": boundaries,
            "calendar_seconds": round(cal_s, 4),
            "slots_per_sec_calendar": round(slots / cal_s, 1),
            "bytes_per_worker": round(trace_bytes / p, 1),
            "calendar_pops": counts["calendar_pops"],
            "touched_per_boundary": {
                "calendar": round(
                    counts["boundary_workers_touched"] / max(boundaries, 1), 2
                ),
            },
        }
        if xl:
            row["sweep_seconds"] = None
            row["largep_speedup"] = None
            row["gated"] = False
        else:
            sweep_counts = outs["sweep"][2]
            sweep_s = best["sweep"]
            row["sweep_seconds"] = round(sweep_s, 4)
            row["slots_per_sec_sweep"] = round(slots / sweep_s, 1)
            row["largep_speedup"] = round(sweep_s / cal_s, 3)
            row["touched_per_boundary"]["sweep"] = round(
                sweep_counts["boundary_workers_touched"] / max(boundaries, 1),
                2,
            )
            row["gated"] = sweep_s >= NOISE_FLOOR_SECONDS
        rows.append(row)
    gated = [row for row in rows if row["gated"]]
    headline = max(gated, key=lambda row: row["p"]) if gated else None
    return {
        "cell": dict(LARGEP_CELL, iterations=LARGEP_ITERATIONS),
        "heuristic": heuristic,
        "replan_policy": policy,
        "results": rows,
        "largep_speedup": headline["largep_speedup"] if headline else None,
        "headline_p": headline["p"] if headline else None,
        "bytes_per_worker_max": max(row["bytes_per_worker"] for row in rows),
        "reports_identical": True,
    }


def run_benchmark(
    *,
    scenarios: int = 1,
    trials: int = 2,
    heuristics: Sequence[str] = HEURISTICS,
    seed: int = 12061,
    repetitions: int = 2,
    cells: Sequence[Tuple[int, int, int]] = TABLE2_SAMPLE,
    long_deadline: bool = True,
    relaxed_policy: bool = True,
    batch_engine: bool = True,
    stacked_rounds: bool = True,
    large_platform: bool = True,
    largep_smoke: bool = False,
    largep_xl: bool = False,
) -> Dict:
    """Time stepping modes, scheduler APIs, instance stores and the
    round-relevance gate over the Table 2 sample (plus the long-horizon
    deadline cell and the relaxed-policy documentation row).

    Returns the JSON-ready document; reports are asserted bit-identical
    between all bit-exact configurations for every simulated instance
    before timings count.  Overall gate ratios aggregate the noise-gated
    cells only (``"gated": true`` rows).
    """
    generator = ScenarioGenerator(seed)
    rows: List[Dict] = []
    for cell in cells:
        rows.append(
            _bench_cell(
                generator,
                tuple(cell),
                scenarios=scenarios,
                trials=trials,
                heuristics=heuristics,
                repetitions=repetitions,
            )
        )
    gated_rows = [row for row in rows if row["gated"]] or rows

    def total(key, subkey=None, source=gated_rows):
        if subkey is None:
            return sum(row[key] for row in source)
        return sum(row[key][subkey] for row in source)

    slot_total = total("slot_seconds")
    span_total = total("span_seconds")
    legacy_api_round_total = total("round_seconds", "legacy_api")
    array_round_total = total("round_seconds", "array")
    legacy_store_total = total("legacy_store_seconds")
    relevance_off_total = total("relevance_off_seconds")
    array_body_total = total("body_seconds", "array")
    legacy_body_total = total("body_seconds", "legacy_store")
    document = {
        "benchmark": "sim-span-stepping",
        "unix_time": int(time.time()),
        "cpu_count": os.cpu_count(),
        "config": {
            "cells": [list(cell) for cell in cells],
            "scenarios_per_cell": scenarios,
            "trials": trials,
            "heuristics": list(heuristics),
            "objectives": ["run", "run_slots"],
            "configs": [list(config) for config in CONFIGS],
            "seed": seed,
            "repetitions": repetitions,
            "deadline_slots": DEADLINE_SLOTS,
            "noise_floor_seconds": NOISE_FLOOR_SECONDS,
        },
        "results": rows,
        "gated_cells": [
            list(row["cell"].values()) for row in rows if row["gated"]
        ],
        "slot_seconds_total": round(slot_total, 4),
        "span_seconds_total": round(span_total, 4),
        "speedup": round(slot_total / span_total, 3),
        "round_seconds_total": {
            "array": round(array_round_total, 4),
            "legacy_api": round(legacy_api_round_total, 4),
        },
        "sched_speedup": round(legacy_api_round_total / array_round_total, 3),
        "legacy_store_seconds_total": round(legacy_store_total, 4),
        "store_speedup": round(legacy_store_total / span_total, 3),
        "body_speedup": round(legacy_body_total / array_body_total, 3),
        "relevance_off_seconds_total": round(relevance_off_total, 4),
        "elision_speedup": round(relevance_off_total / span_total, 3),
        "rounds_elided_total": sum(row["rounds_elided"] for row in rows),
        "reports_identical": True,
    }
    if long_deadline:
        document["long_deadline"] = _bench_long_deadline(
            generator, repetitions=min(repetitions, 2)
        )
    if relaxed_policy:
        document["relaxed_policy"] = _bench_relaxed_policy(
            generator,
            repetitions=min(repetitions, 2),
            scenarios=scenarios,
            trials=trials,
            heuristics=heuristics,
        )
    if batch_engine:
        document["batch_engine"] = _bench_batch_engine(
            generator,
            repetitions=min(repetitions, 2),
            heuristics=heuristics,
        )
        document["batch_speedup"] = document["batch_engine"]["batch_speedup"]
    if stacked_rounds:
        document["stacked_rounds"] = _bench_stacked_rounds(
            generator,
            repetitions=min(repetitions, 2),
            heuristics=heuristics,
        )
        document["stacked_speedup"] = document["stacked_rounds"][
            "stacked_speedup"
        ]
    if large_platform:
        if largep_smoke:
            document["large_platform"] = _bench_large_platform(
                seed=seed,
                repetitions=min(repetitions, 2),
                sizes=(LARGEP_SMOKE_SIZE,),
                max_slots=LARGEP_SMOKE_MAX_SLOTS,
            )
        else:
            document["large_platform"] = _bench_large_platform(
                seed=seed,
                repetitions=min(repetitions, 2),
                include_xl=largep_xl,
            )
        document["largep_speedup"] = document["large_platform"][
            "largep_speedup"
        ]
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", type=int, default=1, help="scenarios/cell")
    parser.add_argument("--trials", type=int, default=2, help="trials/scenario")
    parser.add_argument("--seed", type=int, default=12061)
    parser.add_argument(
        "--repetitions", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.95,
        help=(
            "exit non-zero when span/slot speedup falls below this on the "
            "noise-gated cells.  The PR 5 fused single-pass span search "
            "brought the gated-cell ratio back to ~1.0 (from the PR 4 "
            "0.97-0.98 regression); on churn-dense cells span and slot "
            "are structurally at parity (quiet slots are cheap when no "
            "round runs), so the gate allows wall-clock noise below "
            "exact parity"
        ),
    )
    parser.add_argument(
        "--min-sched-speedup",
        type=float,
        default=1.0,
        help=(
            "exit non-zero when the batch (array) scheduler path's "
            "round throughput falls below the legacy scalar path "
            "(legacy_api round seconds / array round seconds)"
        ),
    )
    parser.add_argument(
        "--min-body-speedup",
        type=float,
        default=1.0,
        help=(
            "exit non-zero when the array instance store's simulator "
            "body falls below the legacy list store "
            "(legacy-store body seconds / array-store body seconds)"
        ),
    )
    parser.add_argument(
        "--min-elision-speedup",
        type=float,
        default=0.95,
        help=(
            "exit non-zero when the exact round-relevance tier costs "
            "measurable wall-clock (relevance-off seconds / default "
            "seconds on the gated cells); the tier is designed to be "
            "free — its savings are the round mutation phase only, so "
            "the ratio sits near 1.0 and this gate guards against it "
            "regressing into a real cost.  The would_replan probe "
            "stashes its placements for the round to reuse, which "
            "restored the gated-cell ratio to ~0.99 from the 0.93 "
            "probe-rescoring regression"
        ),
    )
    parser.add_argument(
        "--min-trace-compression",
        type=float,
        default=6.0,
        help=(
            "exit non-zero when the long-deadline cell's RLE availability "
            "storage stops beating the dense trace + UP-prefix "
            "representation by at least this factor"
        ),
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=1.0,
        help=(
            "exit non-zero when the batch cohort engine's runs/sec fall "
            "below the per-run oracle on the noise-gated batch cells "
            "(per-run seconds / batch seconds).  The fused boundary work "
            "(shared traces, state rows, belief columns) is a bounded "
            "share of runtime — scheduling rounds dominate (DESIGN.md "
            "§11) — so the honest ratio sits near 1.1-1.2x, not the "
            "multi-x of a fully fused kernel; the gate guards the engine "
            "against regressing into a cost"
        ),
    )
    parser.add_argument(
        "--min-stacked-speedup",
        type=float,
        default=0.85,
        help=(
            "exit non-zero when the stacked-round driver falls below this "
            "ratio over the plain cohort engine on the gated stacked cell "
            "(cohort seconds / stacked seconds).  The honest ratio is "
            "~0.92, below parity: the per-run incremental caches already "
            "absorb what stacking fuses and the pause seam taxes every "
            "round (DESIGN.md §14) — the gate guards the seam against "
            "regressing further, not a speedup claim"
        ),
    )
    parser.add_argument(
        "--min-largep-speedup",
        type=float,
        default=1.0,
        help=(
            "exit non-zero when the event-calendar platform engine falls "
            "below this end-to-end ratio over the O(p)-sweep oracle on "
            "the largest noise-gated large-platform cell (measured ~5.5x "
            "at p=10k locally, ~3.4x on the p=2k CI smoke cell)"
        ),
    )
    parser.add_argument(
        "--max-largep-bytes-per-worker",
        type=float,
        default=1024.0,
        help=(
            "exit non-zero when the live RLE availability storage per "
            "worker exceeds this on any large-platform cell (measured "
            "~150 B/worker; dense storage for the same horizon would be "
            ">40 kB/worker)"
        ),
    )
    parser.add_argument(
        "--skip-largep",
        action="store_true",
        help="skip the large-platform calendar cells (quick local runs)",
    )
    parser.add_argument(
        "--largep-smoke",
        action="store_true",
        help=(
            "replace the large-platform cells with the fast p=2000 "
            "short-horizon smoke cell (CI shape)"
        ),
    )
    parser.add_argument(
        "--largep-xl",
        action="store_true",
        help=(
            "include the calendar-only p=100k row (tens of seconds; "
            "documents scale, never gated)"
        ),
    )
    parser.add_argument(
        "--skip-long-deadline",
        action="store_true",
        help="skip the >=100k-slot deadline cell (quick local runs)",
    )
    parser.add_argument(
        "--skip-stacked",
        action="store_true",
        help="skip the stacked-round driver cell (quick local runs)",
    )
    parser.add_argument(
        "--skip-batch-engine",
        action="store_true",
        help="skip the batch cohort engine cells (quick local runs)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help=(
            "append a one-line trajectory record here "
            "(default: BENCH_history.jsonl at the repo root; '-' disables)"
        ),
    )
    parser.add_argument(
        "--skip-relaxed-policy",
        action="store_true",
        help="skip the relaxed-policy documentation row (quick local runs)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write JSON here (else stdout)"
    )
    args = parser.parse_args(argv)

    document = run_benchmark(
        scenarios=args.scenarios,
        trials=args.trials,
        seed=args.seed,
        repetitions=args.repetitions,
        long_deadline=not args.skip_long_deadline,
        relaxed_policy=not args.skip_relaxed_policy,
        batch_engine=not args.skip_batch_engine,
        stacked_rounds=not args.skip_stacked,
        large_platform=not args.skip_largep,
        largep_smoke=args.largep_smoke,
        largep_xl=args.largep_xl,
    )
    if args.history != "-":
        from bench_history import append_history

        append_history(
            "sim-hot-loop",
            {
                "speedup": document["speedup"],
                "sched_speedup": document["sched_speedup"],
                "store_speedup": document["store_speedup"],
                "body_speedup": document["body_speedup"],
                "elision_speedup": document["elision_speedup"],
                "batch_speedup": document.get("batch_speedup"),
                "stacked_speedup": document.get("stacked_speedup"),
                "rows_scored_stacked": (
                    document["stacked_rounds"]["rows_scored_stacked"]
                    if "stacked_rounds" in document
                    else None
                ),
                # Cell parameters, so a trajectory line is interpretable
                # without digging up the BENCH_sim.json it came from.
                "cells": [list(cell) for cell in TABLE2_SAMPLE],
                "heuristics": list(HEURISTICS),
            },
            path=args.history,
        )
        largep = document.get("large_platform")
        if largep is not None and largep["largep_speedup"] is not None:
            append_history(
                "sim-large-platform",
                {
                    "largep_speedup": largep["largep_speedup"],
                    "p": largep["headline_p"],
                    "n": largep["cell"]["n"],
                    "wmin": largep["cell"]["wmin"],
                    "heuristic": largep["heuristic"],
                    "replan_policy": largep["replan_policy"],
                    "bytes_per_worker_max": largep["bytes_per_worker_max"],
                },
                path=args.history,
            )
    text = json.dumps(document, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        cells = ", ".join(
            f"{tuple(row['cell'].values())}: {row['speedup']}x/"
            f"{row['sched_speedup']}x/{row['body_speedup']}x/"
            f"{row['elision_speedup']}x"
            + ("" if row["gated"] else " (ungated)")
            for row in document["results"]
        )
        batch = document.get("batch_speedup")
        stacked = document.get("stacked_speedup")
        largep_ratio = document.get("largep_speedup")
        print(
            f"wrote {args.out} (overall span {document['speedup']}x, "
            f"sched {document['sched_speedup']}x, store "
            f"{document['store_speedup']}x, body {document['body_speedup']}x, "
            f"elision {document['elision_speedup']}x over "
            f"{document['rounds_elided_total']} elided rounds"
            + (f", batch {batch}x" if batch is not None else "")
            + (f", stacked {stacked}x" if stacked is not None else "")
            + (f", large-p {largep_ratio}x" if largep_ratio is not None else "")
            + f"; per-cell span/sched/body/elision: {cells})",
            file=sys.stderr,
        )
    else:
        print(text)
    failed = False
    if document["speedup"] < args.min_speedup:
        print(
            f"FAIL: span mode speedup {document['speedup']} < "
            f"{args.min_speedup} (span-stepped core regressed below the "
            "slot-stepped oracle on the gated cells)",
            file=sys.stderr,
        )
        failed = True
    if document["sched_speedup"] < args.min_sched_speedup:
        print(
            f"FAIL: batch scheduling speedup {document['sched_speedup']} < "
            f"{args.min_sched_speedup} (array RoundState path regressed "
            "below the legacy scalar scheduler path)",
            file=sys.stderr,
        )
        failed = True
    if document["body_speedup"] < args.min_body_speedup:
        print(
            f"FAIL: simulator body speedup {document['body_speedup']} < "
            f"{args.min_body_speedup} (array InstanceTable body regressed "
            "below the legacy list-store body)",
            file=sys.stderr,
        )
        failed = True
    if document["elision_speedup"] < args.min_elision_speedup:
        print(
            f"FAIL: elision speedup {document['elision_speedup']} < "
            f"{args.min_elision_speedup} (the exact round-relevance tier "
            "regressed into a measurable cost)",
            file=sys.stderr,
        )
        failed = True
    batch_speedup = document.get("batch_speedup")
    if batch_speedup is not None and batch_speedup < args.min_batch_speedup:
        print(
            f"FAIL: batch engine speedup {batch_speedup} < "
            f"{args.min_batch_speedup} (the cohort engine regressed below "
            "the per-run oracle on the gated batch cells)",
            file=sys.stderr,
        )
        failed = True
    stacked_row = document.get("stacked_rounds")
    if (
        stacked_row is not None
        and stacked_row["gated"]
        and stacked_row["stacked_speedup"] < args.min_stacked_speedup
    ):
        print(
            f"FAIL: stacked-round speedup {stacked_row['stacked_speedup']} "
            f"< {args.min_stacked_speedup} (the stacked-round pause seam "
            "regressed further below the plain cohort engine on the "
            f"gated R={stacked_row['cohort']} cell)",
            file=sys.stderr,
        )
        failed = True
    largep = document.get("large_platform")
    if largep is not None:
        largep_speedup = largep["largep_speedup"]
        if largep_speedup is not None and largep_speedup < args.min_largep_speedup:
            print(
                f"FAIL: large-platform speedup {largep_speedup} < "
                f"{args.min_largep_speedup} on the p={largep['headline_p']} "
                "cell (the event-calendar engine regressed toward the "
                "O(p)-sweep oracle)",
                file=sys.stderr,
            )
            failed = True
        if largep["bytes_per_worker_max"] > args.max_largep_bytes_per_worker:
            print(
                f"FAIL: large-platform availability storage "
                f"{largep['bytes_per_worker_max']} B/worker > "
                f"{args.max_largep_bytes_per_worker} (the RLE memory "
                "contract regressed)",
                file=sys.stderr,
            )
            failed = True
    long_row = document.get("long_deadline")
    if (
        long_row is not None
        and long_row["trace_compression"] < args.min_trace_compression
    ):
        print(
            f"FAIL: RLE trace compression {long_row['trace_compression']} < "
            f"{args.min_trace_compression} on the long-horizon deadline "
            "cell (availability storage regressed toward dense)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
