"""Simulator-core stepping + scheduling-round benchmark (exp. id ``bench-sim``).

Measures the per-run hot path of :class:`~repro.sim.master.MasterSimulator`
on a declared sample of the paper's Table 2 grid, and emits a JSON document
so successive PRs accumulate a perf trajectory::

    PYTHONPATH=src python benchmarks/bench_sim.py --out BENCH_sim.json

Two comparisons are timed, over the same (cell, scenario, trial,
heuristic, objective) population:

* **stepping** — the slot-stepped oracle loop vs the span-stepped default
  (DESIGN.md §6), both on the array scheduler API;
* **scheduling API** — the legacy scalar scheduler path (eager
  ``ProcessorView`` snapshots, one Python ``score`` call per candidate)
  vs the array-backed batch path (incrementally maintained ``RoundState``
  + vectorised ``score_batch``, DESIGN.md §8), both span-stepped.  The
  scheduling-round time is measured directly by wrapping the round driver,
  so each cell reports ``round_time_share`` (fraction of wall-clock spent
  in rounds) and ``rounds_per_sec`` for both APIs, plus their ratio
  ``sched_speedup``.

Every simulated instance is asserted **bit-identical** across all three
configurations before any number is reported; both objectives are covered
(``run`` for the makespan protocol, ``run_slots`` for the Section 3.4
deadline form).  A speedup that changed the science would be worthless.

Context for the stepping numbers: the span-stepped loop can only skip
slots in which *nothing observable* happens.  Per processor the paper's
chains hold state for 10–100 slots, but the evaluation protocol runs
p = 20 processors jointly and re-plans on every UP-set change, so the
joint event density is close to one per slot and the measured ``mean_span``
sits far below the single-processor sojourn bound — which is exactly why
making the mandatory round cheap (the ``sched_speedup`` column) is the
lever that moves wall-clock.

CI gates: ``--min-speedup`` (default 0.90) fails the job when span mode is
slower than slot mode beyond wall-clock noise; ``--min-sched-speedup``
(default 1.0) fails it when the batch path's scheduling throughput
regresses below the legacy scalar path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.heuristics.registry import make_scheduler
from repro.core.markov import MarkovAvailabilityModel
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.types import ProcState
from repro.workload.scenarios import ScenarioGenerator

#: The measured Table 2 sample: one cell per (n, wmin) regime — small
#: communication-light, the paper's midpoint, and the large
#: compute-dominated corner — plus a replication-heavy small-n cell.
TABLE2_SAMPLE: Tuple[Tuple[int, int, int], ...] = (
    (5, 5, 1),
    (20, 10, 5),
    (5, 10, 10),
    (40, 20, 10),
)

HEURISTICS: Tuple[str, ...] = ("emct*", "mct")
DEADLINE_SLOTS = 2000

#: (step_mode, scheduler_api) configurations timed per run.
CONFIGS: Tuple[Tuple[str, str], ...] = (
    ("slot", "array"),
    ("span", "array"),
    ("span", "legacy"),
)


def _simulate(scenario, trial: int, heuristic: str, mode: str, api: str,
              objective: str):
    platform = scenario.build_platform(trial)
    sim = MasterSimulator(
        platform,
        scenario.app,
        make_scheduler(heuristic, platform=platform),
        options=SimulatorOptions(step_mode=mode, scheduler_api=api),
        rng=scenario.scheduler_rng(trial, heuristic),
    )
    # Wrap the round driver so the scheduling share of wall-clock is
    # measured directly (includes the triviality check and context
    # refresh/build — the full per-round cost either API pays).
    round_clock = {"seconds": 0.0}
    inner_round = sim._scheduling_round

    def timed_round(slot, states):
        begin = time.perf_counter()
        inner_round(slot, states)
        round_clock["seconds"] += time.perf_counter() - begin

    sim._scheduling_round = timed_round
    start = time.perf_counter()
    if objective == "run":
        report = sim.run(max_slots=500_000)
    else:
        report = sim.run_slots(DEADLINE_SLOTS)
    elapsed = time.perf_counter() - start
    return report, elapsed, sim.steps_executed, round_clock["seconds"]


def _mean_sojourn_bound(scenario) -> float:
    """Average per-processor UP sojourn of the cell's chains (slots)."""
    total = 0.0
    for model in scenario.models:
        assert isinstance(model, MarkovAvailabilityModel)
        total += model.mean_sojourn(ProcState.UP)
    return total / len(scenario.models)


def _bench_cell(
    generator: ScenarioGenerator,
    cell: Tuple[int, int, int],
    *,
    scenarios: int,
    trials: int,
    heuristics: Sequence[str],
    repetitions: int,
) -> Dict:
    n, ncom, wmin = cell
    population = [generator.scenario(n, ncom, wmin, i) for i in range(scenarios)]
    runs = [
        (scenario, trial, heuristic, objective)
        for scenario in population
        for trial in range(trials)
        for heuristic in heuristics
        for objective in ("run", "run_slots")
    ]
    best: Dict[Tuple[str, str], Dict[str, float]] = {
        config: {"seconds": float("inf"), "round_seconds": float("inf")}
        for config in CONFIGS
    }
    slots_total = 0
    boundaries_total = 0
    rounds_total = 0
    for _rep in range(repetitions):
        rep = {config: {"seconds": 0.0, "round_seconds": 0.0} for config in CONFIGS}
        slots_total = 0
        boundaries_total = 0
        rounds_total = 0
        for scenario, trial, heuristic, objective in runs:
            reports = {}
            for mode, api in CONFIGS:
                report, elapsed, steps, round_seconds = _simulate(
                    scenario, trial, heuristic, mode, api, objective
                )
                reports[(mode, api)] = report
                rep[(mode, api)]["seconds"] += elapsed
                rep[(mode, api)]["round_seconds"] += round_seconds
                if (mode, api) == ("span", "array"):
                    boundaries_total += steps
                    rounds_total += report.scheduler_rounds
            reference = reports[CONFIGS[0]]
            for config, report in reports.items():  # pragma: no branch
                if report != reference:  # pragma: no cover
                    raise AssertionError(
                        f"configs diverged on cell {cell}, scenario "
                        f"{scenario.key}, trial {trial}, {heuristic}/"
                        f"{objective}: {CONFIGS[0]} vs {config}"
                    )
            slots_total += reference.slots_simulated
        # Wall-clock noise mitigation: best-of-N per configuration, keeping
        # each rep's (total, round) pair together so shares stay coherent.
        for config in CONFIGS:
            if rep[config]["seconds"] < best[config]["seconds"]:
                best[config] = rep[config]
    slot_s = best[("slot", "array")]["seconds"]
    span_s = best[("span", "array")]["seconds"]
    legacy_span_s = best[("span", "legacy")]["seconds"]
    array_round_s = best[("span", "array")]["round_seconds"]
    legacy_round_s = best[("span", "legacy")]["round_seconds"]
    return {
        "cell": {"n": n, "ncom": ncom, "wmin": wmin},
        "runs": len(runs),
        "slots": slots_total,
        "slot_seconds": round(slot_s, 4),
        "span_seconds": round(span_s, 4),
        "legacy_span_seconds": round(legacy_span_s, 4),
        "slots_per_sec_slot": round(slots_total / slot_s, 1),
        "slots_per_sec_span": round(slots_total / span_s, 1),
        "speedup": round(slot_s / span_s, 3),
        "rounds": rounds_total,
        "round_seconds": {
            "array": round(array_round_s, 4),
            "legacy": round(legacy_round_s, 4),
        },
        "round_time_share": {
            "array": round(array_round_s / span_s, 3),
            "legacy": round(legacy_round_s / legacy_span_s, 3),
        },
        "rounds_per_sec": {
            "array": round(rounds_total / array_round_s, 1),
            "legacy": round(rounds_total / legacy_round_s, 1),
        },
        "sched_speedup": round(legacy_round_s / array_round_s, 3),
        "mean_span": round(slots_total / boundaries_total, 2),
        "mean_up_sojourn": round(
            sum(_mean_sojourn_bound(s) for s in population) / len(population), 1
        ),
    }


def run_benchmark(
    *,
    scenarios: int = 1,
    trials: int = 2,
    heuristics: Sequence[str] = HEURISTICS,
    seed: int = 12061,
    repetitions: int = 2,
    cells: Sequence[Tuple[int, int, int]] = TABLE2_SAMPLE,
) -> Dict:
    """Time the stepping modes and scheduler APIs over the Table 2 sample.

    Returns the JSON-ready document; reports are asserted bit-identical
    between all configurations for every simulated instance before
    timings count.
    """
    generator = ScenarioGenerator(seed)
    rows: List[Dict] = []
    for cell in cells:
        rows.append(
            _bench_cell(
                generator,
                tuple(cell),
                scenarios=scenarios,
                trials=trials,
                heuristics=heuristics,
                repetitions=repetitions,
            )
        )
    slot_total = sum(row["slot_seconds"] for row in rows)
    span_total = sum(row["span_seconds"] for row in rows)
    legacy_round_total = sum(row["round_seconds"]["legacy"] for row in rows)
    array_round_total = sum(row["round_seconds"]["array"] for row in rows)
    return {
        "benchmark": "sim-span-stepping",
        "unix_time": int(time.time()),
        "cpu_count": os.cpu_count(),
        "config": {
            "cells": [list(cell) for cell in cells],
            "scenarios_per_cell": scenarios,
            "trials": trials,
            "heuristics": list(heuristics),
            "objectives": ["run", "run_slots"],
            "configs": [list(config) for config in CONFIGS],
            "seed": seed,
            "repetitions": repetitions,
            "deadline_slots": DEADLINE_SLOTS,
        },
        "results": rows,
        "slot_seconds_total": round(slot_total, 4),
        "span_seconds_total": round(span_total, 4),
        "speedup": round(slot_total / span_total, 3),
        "round_seconds_total": {
            "array": round(array_round_total, 4),
            "legacy": round(legacy_round_total, 4),
        },
        "sched_speedup": round(legacy_round_total / array_round_total, 3),
        "reports_identical": True,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", type=int, default=1, help="scenarios/cell")
    parser.add_argument("--trials", type=int, default=2, help="trials/scenario")
    parser.add_argument("--seed", type=int, default=12061)
    parser.add_argument(
        "--repetitions", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.90,
        help=(
            "exit non-zero when span/slot speedup falls below this "
            "(regression gate; the margin absorbs shared-runner "
            "wall-clock noise, which on sub-second cells runs to ~10%%)"
        ),
    )
    parser.add_argument(
        "--min-sched-speedup",
        type=float,
        default=1.0,
        help=(
            "exit non-zero when the batch (array) scheduler path's "
            "round throughput falls below the legacy scalar path "
            "(legacy_round_seconds / array_round_seconds)"
        ),
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write JSON here (else stdout)"
    )
    args = parser.parse_args(argv)

    document = run_benchmark(
        scenarios=args.scenarios,
        trials=args.trials,
        seed=args.seed,
        repetitions=args.repetitions,
    )
    text = json.dumps(document, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        cells = ", ".join(
            f"{tuple(row['cell'].values())}: {row['speedup']}x/"
            f"{row['sched_speedup']}x"
            for row in document["results"]
        )
        print(
            f"wrote {args.out} (overall span {document['speedup']}x, "
            f"sched {document['sched_speedup']}x; per-cell span/sched: "
            f"{cells})",
            file=sys.stderr,
        )
    else:
        print(text)
    failed = False
    if document["speedup"] < args.min_speedup:
        print(
            f"FAIL: span mode speedup {document['speedup']} < "
            f"{args.min_speedup} (span-stepped core regressed below the "
            "slot-stepped oracle)",
            file=sys.stderr,
        )
        failed = True
    if document["sched_speedup"] < args.min_sched_speedup:
        print(
            f"FAIL: batch scheduling speedup {document['sched_speedup']} < "
            f"{args.min_sched_speedup} (array RoundState path regressed "
            "below the legacy scalar scheduler path)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
