"""Simulator-core stepping benchmark (exp. id ``bench-sim``).

Measures the per-run hot path of :class:`~repro.sim.master.MasterSimulator`
— the slot-stepped oracle loop against the span-stepped default
(DESIGN.md §6) — on a declared sample of the paper's Table 2 grid, and
emits a JSON document so successive PRs accumulate a perf trajectory::

    PYTHONPATH=src python benchmarks/bench_sim.py --out BENCH_sim.json

Every (cell, scenario, trial, heuristic) pair is simulated in both modes
and the two :class:`~repro.sim.metrics.SimulationReport`\\ s are asserted
**bit-identical** before any number is reported; both objectives are
covered (``run`` for the makespan protocol, ``run_slots`` for the
Section 3.4 deadline form).  A speedup that changed the science would be
worthless.

Context for the numbers: the span-stepped loop can only skip slots in
which *nothing observable* happens.  Per processor the paper's chains
hold state for 10–100 slots (``MarkovAvailabilityModel.mean_sojourn``),
but the evaluation protocol runs p = 20 processors jointly and re-plans
on every UP-set change, so with planned-but-unstarted work around (most
of a run) the joint event density is close to one per slot, and the
measured mean span — reported per cell as ``mean_span`` — sits far below
the single-processor sojourn bound.  The headline ``speedup`` is
therefore event-density-bounded, not sojourn-bounded; the JSON keeps
both so the trajectory records how far each PR pushes the gap.

The CI gate (``--min-speedup``, default 0.95) fails the job when span
mode is slower than slot mode beyond wall-clock noise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.heuristics.registry import make_scheduler
from repro.core.markov import MarkovAvailabilityModel
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.types import ProcState
from repro.workload.scenarios import ScenarioGenerator

#: The measured Table 2 sample: one cell per (n, wmin) regime — small
#: communication-light, the paper's midpoint, and the large
#: compute-dominated corner — plus a replication-heavy small-n cell.
TABLE2_SAMPLE: Tuple[Tuple[int, int, int], ...] = (
    (5, 5, 1),
    (20, 10, 5),
    (5, 10, 10),
    (40, 20, 10),
)

HEURISTICS: Tuple[str, ...] = ("emct*", "mct")
DEADLINE_SLOTS = 2000


def _simulate(scenario, trial: int, heuristic: str, mode: str, objective: str):
    platform = scenario.build_platform(trial)
    sim = MasterSimulator(
        platform,
        scenario.app,
        make_scheduler(heuristic, platform=platform),
        options=SimulatorOptions(step_mode=mode),
        rng=scenario.scheduler_rng(trial, heuristic),
    )
    start = time.perf_counter()
    if objective == "run":
        report = sim.run(max_slots=500_000)
    else:
        report = sim.run_slots(DEADLINE_SLOTS)
    elapsed = time.perf_counter() - start
    return report, elapsed, sim.steps_executed


def _mean_sojourn_bound(scenario) -> float:
    """Average per-processor UP sojourn of the cell's chains (slots)."""
    total = 0.0
    for model in scenario.models:
        assert isinstance(model, MarkovAvailabilityModel)
        total += model.mean_sojourn(ProcState.UP)
    return total / len(scenario.models)


def _bench_cell(
    generator: ScenarioGenerator,
    cell: Tuple[int, int, int],
    *,
    scenarios: int,
    trials: int,
    heuristics: Sequence[str],
    repetitions: int,
) -> Dict:
    n, ncom, wmin = cell
    population = [generator.scenario(n, ncom, wmin, i) for i in range(scenarios)]
    runs = [
        (scenario, trial, heuristic, objective)
        for scenario in population
        for trial in range(trials)
        for heuristic in heuristics
        for objective in ("run", "run_slots")
    ]
    seconds = {"slot": float("inf"), "span": float("inf")}
    slots_total = 0
    boundaries_total = 0
    for _rep in range(repetitions):
        rep_seconds = {"slot": 0.0, "span": 0.0}
        slots_total = 0
        boundaries_total = 0
        for scenario, trial, heuristic, objective in runs:
            reports = {}
            for mode in ("slot", "span"):
                report, elapsed, steps = _simulate(
                    scenario, trial, heuristic, mode, objective
                )
                reports[mode] = report
                rep_seconds[mode] += elapsed
                if mode == "span":
                    boundaries_total += steps
            if reports["slot"] != reports["span"]:  # pragma: no cover
                raise AssertionError(
                    f"span/slot reports diverged on cell {cell}, scenario "
                    f"{scenario.key}, trial {trial}, {heuristic}/{objective}"
                )
            slots_total += reports["slot"].slots_simulated
        # Wall-clock noise mitigation: best-of-N per mode.
        seconds = {m: min(seconds[m], rep_seconds[m]) for m in seconds}
    return {
        "cell": {"n": n, "ncom": ncom, "wmin": wmin},
        "runs": len(runs),
        "slots": slots_total,
        "slot_seconds": round(seconds["slot"], 4),
        "span_seconds": round(seconds["span"], 4),
        "slots_per_sec_slot": round(slots_total / seconds["slot"], 1),
        "slots_per_sec_span": round(slots_total / seconds["span"], 1),
        "speedup": round(seconds["slot"] / seconds["span"], 3),
        "mean_span": round(slots_total / boundaries_total, 2),
        "mean_up_sojourn": round(
            sum(_mean_sojourn_bound(s) for s in population) / len(population), 1
        ),
    }


def run_benchmark(
    *,
    scenarios: int = 1,
    trials: int = 2,
    heuristics: Sequence[str] = HEURISTICS,
    seed: int = 12061,
    repetitions: int = 2,
    cells: Sequence[Tuple[int, int, int]] = TABLE2_SAMPLE,
) -> Dict:
    """Time both stepping modes over the Table 2 sample.

    Returns the JSON-ready document; reports are asserted bit-identical
    between modes for every simulated instance before timings count.
    """
    generator = ScenarioGenerator(seed)
    rows: List[Dict] = []
    for cell in cells:
        rows.append(
            _bench_cell(
                generator,
                tuple(cell),
                scenarios=scenarios,
                trials=trials,
                heuristics=heuristics,
                repetitions=repetitions,
            )
        )
    slot_total = sum(row["slot_seconds"] for row in rows)
    span_total = sum(row["span_seconds"] for row in rows)
    return {
        "benchmark": "sim-span-stepping",
        "unix_time": int(time.time()),
        "cpu_count": os.cpu_count(),
        "config": {
            "cells": [list(cell) for cell in cells],
            "scenarios_per_cell": scenarios,
            "trials": trials,
            "heuristics": list(heuristics),
            "objectives": ["run", "run_slots"],
            "seed": seed,
            "repetitions": repetitions,
            "deadline_slots": DEADLINE_SLOTS,
        },
        "results": rows,
        "slot_seconds_total": round(slot_total, 4),
        "span_seconds_total": round(span_total, 4),
        "speedup": round(slot_total / span_total, 3),
        "reports_identical": True,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", type=int, default=1, help="scenarios/cell")
    parser.add_argument("--trials", type=int, default=2, help="trials/scenario")
    parser.add_argument("--seed", type=int, default=12061)
    parser.add_argument(
        "--repetitions", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=0.90,
        help=(
            "exit non-zero when span/slot speedup falls below this "
            "(regression gate; the margin below the measured ~1.05x "
            "overall absorbs shared-runner wall-clock noise, which on "
            "sub-second cells runs to ~10%%)"
        ),
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write JSON here (else stdout)"
    )
    args = parser.parse_args(argv)

    document = run_benchmark(
        scenarios=args.scenarios,
        trials=args.trials,
        seed=args.seed,
        repetitions=args.repetitions,
    )
    text = json.dumps(document, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        cells = ", ".join(
            f"{tuple(row['cell'].values())}: {row['speedup']}x"
            for row in document["results"]
        )
        print(
            f"wrote {args.out} (overall {document['speedup']}x; {cells})",
            file=sys.stderr,
        )
    else:
        print(text)
    if document["speedup"] < args.min_speedup:
        print(
            f"FAIL: span mode speedup {document['speedup']} < "
            f"{args.min_speedup} (span-stepped core regressed below the "
            "slot-stepped oracle)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
