"""Table 2 regeneration benchmark (exp. id ``table2`` in DESIGN.md).

Runs the paper's Table 2 protocol at reduced scale (scale with
``REPRO_BENCH_SCALE``), prints the measured-vs-paper table, and asserts
the *shape* conclusions that are robust even at smoke scale:

* every random heuristic has a worse average dfb than the best greedy
  heuristic;
* the table is internally consistent (dfb ≥ 0, wins sum ≥ instances).

Finer-grained shape targets (EMCT ≤ MCT, the exact ranking) need larger
samples; they are recorded in EXPERIMENTS.md from medium-scale runs.
"""

from repro.experiments.table2 import render_table2, run_table2

# A reduced but still grid-shaped slice: all n values, one ncom, three
# wmin levels spanning the x-axis of Figure 2.
REDUCED = dict(n_values=(5, 20), ncom_values=(5,), wmin_values=(1, 5, 10))


def test_table2_regeneration(benchmark, scale):
    result = benchmark.pedantic(
        lambda: run_table2(
            scenarios_per_cell=1 * scale,
            trials=2,
            seed=12061,
            **REDUCED,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table2(result))

    rows = {name: (dfb, wins) for name, dfb, wins in result.rows()}
    assert len(rows) == 17

    greedy_best = min(rows[n][0] for n in ("mct", "mct*", "emct", "emct*"))
    for name in ("random", "random1", "random2", "random3", "random4"):
        assert rows[name][0] > greedy_best, (
            f"{name} should trail the MCT family"
        )

    for name, (dfb, wins) in rows.items():
        assert dfb >= 0.0
        assert wins >= 0
    assert sum(w for _, w in rows.values()) >= result.campaign.instances
