"""Benchmarks for the analytic core (Lemma 1 / Theorem 2 / P_UD).

These quantify the cost of the closed forms the heuristics evaluate in
their inner loops, and the speed-up of the closed form over the
Monte-Carlo estimate it replaces (the reason Theorem 2 matters in
practice, not only in the proofs).
"""

import numpy as np

from repro.core.expectation import (
    expected_completion_slots,
    p_no_down_approx,
    p_no_down_exact,
    p_plus,
    simulate_completion_slots,
)
from repro.core.markov import paper_random_model


def _models(count=50, seed=0):
    rng = np.random.default_rng(seed)
    return [paper_random_model(rng) for _ in range(count)]


def test_p_plus_closed_form(benchmark):
    models = _models()

    def run():
        return sum(p_plus(m) for m in models)

    total = benchmark(run)
    assert 0 < total < len(models)


def test_theorem2_closed_form(benchmark):
    models = _models()

    def run():
        return sum(expected_completion_slots(m, 50) for m in models)

    total = benchmark(run)
    assert total >= 50 * len(models)


def test_theorem2_monte_carlo_equivalent(benchmark):
    # The estimate the closed form replaces: orders of magnitude slower
    # for the same answer (tolerances asserted in the unit tests).
    model = _models(1, seed=3)[0]

    def run():
        return simulate_completion_slots(
            model, 20, np.random.default_rng(0), samples=200
        )

    p_success, _mean = benchmark(run)
    assert 0 <= p_success <= 1


def test_p_ud_exact_matrix_power(benchmark):
    models = _models()

    def run():
        return sum(p_no_down_exact(m, 40) for m in models)

    benchmark(run)


def test_p_ud_rank1_approximation(benchmark):
    models = _models()

    def run():
        return sum(p_no_down_approx(m, 40.0) for m in models)

    benchmark(run)
