"""Section 4 benchmarks (exp. ids ``figure1`` and ``counterexample``).

Times the executable complexity artefacts and re-asserts their paper
values: the certificate round trip on the Figure 1 formula, the exact
solver reproducing the optimal makespan of 9 on the worked example, and
the MCT-vs-exact cross-validation of Proposition 2.
"""

import numpy as np

from repro.core.offline.counterexample import analyze, paper_counterexample
from repro.core.offline.exact import exact_offline_makespan
from repro.core.offline.instance import OfflineInstance
from repro.core.offline.mct import offline_mct
from repro.core.offline.sat_reduction import (
    PAPER_FIGURE1_FORMULA,
    brute_force_sat,
    reduction_instance,
    schedule_from_assignment,
    verify_schedule,
)


def test_figure1_certificate_round_trip(benchmark):
    sat = PAPER_FIGURE1_FORMULA

    def run():
        assignment = brute_force_sat(sat)
        schedule = schedule_from_assignment(sat, assignment)
        return verify_schedule(reduction_instance(sat), schedule)

    makespan = benchmark(run)
    assert makespan is not None
    assert makespan <= reduction_instance(sat).horizon


def test_counterexample_exact_solver(benchmark):
    result = benchmark(lambda: exact_offline_makespan(paper_counterexample()))
    assert result.makespan == 9  # the paper's optimal


def test_counterexample_full_analysis(benchmark):
    analysis = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert analysis.optimal_makespan == 9
    assert analysis.mct_online_makespan > 9
    assert analysis.mct_first_choice_processor == 0


def test_offline_mct_greedy(benchmark):
    rng = np.random.default_rng(0)
    rows = ["".join(rng.choice(list("uuur"), size=60)) for _ in range(8)]
    inst = OfflineInstance.from_codes(
        rows, t_prog=3, t_data=1, speeds=[int(rng.integers(1, 4)) for _ in range(8)],
        ncom=None, m=12,
    )
    result = benchmark(lambda: offline_mct(inst))
    assert result.makespan is not None


def test_proposition2_cross_validation(benchmark, scale):
    def run():
        rng = np.random.default_rng(7)
        matches = 0
        trials = 5 * scale
        for _ in range(trials):
            rows = ["".join(rng.choice(list("uuur"), size=12)) for _ in range(2)]
            inst = OfflineInstance.from_codes(
                rows, t_prog=1, t_data=1, speeds=1, ncom=None,
                m=int(rng.integers(1, 4)),
            )
            matches += (
                offline_mct(inst).makespan
                == exact_offline_makespan(inst).makespan
            )
        return matches, trials

    matches, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    assert matches == trials  # Proposition 2: MCT optimal without contention
