"""Append-only benchmark trajectory (``BENCH_history.jsonl``).

The per-PR benchmark documents (``BENCH_sim.json``, ad-hoc campaign
runs) are snapshots — each PR overwrites the last.  The history file is
the missing time axis: every benchmark run appends one JSON line with
the commit it measured, the machine class, and the run's headline
ratios, so the perf trajectory across PRs survives in-repo and a
regression can be bisected to a commit without re-running old trees.

Lines are self-contained JSON objects (jsonl), append-only; readers
must tolerate unknown keys — each benchmark contributes its own
headline fields.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, Optional

#: History lives at the repo root, next to BENCH_sim.json.
DEFAULT_HISTORY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_history.jsonl",
)


def git_sha() -> Optional[str]:
    """The current commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def append_history(
    benchmark: str, ratios: Dict, path: Optional[str] = None
) -> Dict:
    """Append one trajectory record; returns the record written.

    Args:
        benchmark: the benchmark's exp. id (``"sim-hot-loop"``,
            ``"campaign-backends"``).
        ratios: the run's headline numbers — overall speedup ratios,
            runs/sec — small and flat (this is a trajectory line, not
            the full document).
        path: history file (default: ``BENCH_history.jsonl`` at the
            repo root).
    """
    record = {
        "benchmark": benchmark,
        "git_sha": git_sha(),
        "unix_time": int(time.time()),
        "cpu_count": os.cpu_count() or 1,
        **ratios,
    }
    target = path or DEFAULT_HISTORY_PATH
    _dedupe_same_commit(target, benchmark, record["git_sha"])
    with open(target, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def _dedupe_same_commit(
    target: str, benchmark: str, sha: Optional[str]
) -> None:
    """Drop earlier lines for the same (benchmark, commit) pair.

    Re-running a benchmark at an unchanged commit is a measurement
    retry, not a new trajectory point; keeping every retry would let
    the noisiest machine dominate the history.  Lines from other
    commits, other benchmarks, or without a resolvable commit are left
    untouched (unparseable lines too — the file is shared).
    """
    if sha is None or not os.path.exists(target):
        return
    with open(target) as handle:
        lines = handle.readlines()
    kept = []
    changed = False
    for line in lines:
        try:
            entry = json.loads(line)
        except ValueError:
            kept.append(line)
            continue
        if (
            isinstance(entry, dict)
            and entry.get("benchmark") == benchmark
            and entry.get("git_sha") == sha
        ):
            changed = True
            continue
        kept.append(line)
    if changed:
        with open(target, "w") as handle:
            handle.writelines(kept)
