"""Table 3 regeneration benchmark (exp. ids ``table3x5`` / ``table3x10``).

Contention-prone campaigns with communication scaled ×5 and ×10.  Prints
measured-vs-paper rows.  Robust shape assertion at smoke scale: under ×10
communication, the contention-corrected MCT* beats plain MCT (the paper's
headline for this table — plain MCT collapses to 15.50 dfb).
"""

import pytest

from repro.experiments.table3 import render_table3, run_table3


@pytest.mark.parametrize("factor", [5, 10])
def test_table3_regeneration(benchmark, scale, factor):
    result = benchmark.pedantic(
        lambda: run_table3(
            factor,
            scenarios=3 * scale,
            trials=2,
            seed=12061,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table3(result))

    dfb = dict(result.rows())
    assert set(dfb) == {"mct", "mct*", "emct", "emct*", "lw", "lw*", "ud", "ud*"}
    for value in dfb.values():
        assert value >= 0.0

    if factor == 10:
        # The paper's strongest Table 3 signal: plain MCT is the worst
        # greedy heuristic once communication dominates.
        assert dfb["mct*"] < dfb["mct"]
        assert dfb["mct"] == max(dfb.values())
