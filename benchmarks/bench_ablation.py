"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

Each ablation runs paired simulations on identical availability samples
and reports the measured effect:

* replication cap (0 / 1 / 2 extra replicas — the paper settled on 2);
* event-driven re-planning vs the paper's conceptual every-slot re-plan
  (must produce similar makespans at a fraction of the scheduler rounds);
* the UD heuristic with the paper's rank-1 P_UD approximation vs the
  exact matrix-power form (quality of the approximation as a scheduler);
* Equation 2's contention-correcting factor on a contention-prone
  workload.
"""

import numpy as np

from repro.core.heuristics.registry import make_scheduler
from repro.sim.master import MasterSimulator, SimulatorOptions
from repro.workload.scenarios import ScenarioGenerator


def _run(scenario, trial, heuristic, options):
    sim = MasterSimulator(
        scenario.build_platform(trial),
        scenario.app,
        make_scheduler(heuristic),
        options=options,
        rng=scenario.scheduler_rng(trial, heuristic),
    )
    report = sim.run(max_slots=400_000)
    assert report.makespan is not None
    return report


def _mean_makespan(scenarios, trials, heuristic, options):
    total = 0.0
    count = 0
    reports = []
    for scenario in scenarios:
        for trial in range(trials):
            report = _run(scenario, trial, heuristic, options)
            total += report.makespan
            count += 1
            reports.append(report)
    return total / count, reports


def test_replication_cap(benchmark, scale):
    scenarios = [
        ScenarioGenerator(31).scenario(5, 5, 5, i) for i in range(2 * scale)
    ]

    def run():
        means = {}
        for cap in (0, 1, 2):
            options = SimulatorOptions(
                replication=cap > 0, max_replicas=max(cap, 0)
            )
            means[cap], _ = _mean_makespan(scenarios, 2, "emct", options)
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nreplication cap -> mean makespan: {means}")
    # Replication should help small-m workloads; cap 2 must not be much
    # worse than cap 1 (the paper found it slightly better).
    assert means[2] <= means[0] * 1.05


def test_replan_policy(benchmark, scale):
    scenarios = [
        ScenarioGenerator(32).scenario(10, 5, 3, i) for i in range(2 * scale)
    ]

    def run():
        results = {}
        for label, every_slot in (("events", False), ("every-slot", True)):
            options = SimulatorOptions(replan_every_slot=every_slot)
            mean, reports = _mean_makespan(scenarios, 1, "emct*", options)
            rounds = sum(r.scheduler_rounds for r in reports)
            results[label] = (mean, rounds)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nreplan policy -> (mean makespan, scheduler rounds): {results}")
    events_mean, events_rounds = results["events"]
    slot_mean, slot_rounds = results["every-slot"]
    # Event-driven re-planning must save rounds without costing much time.
    assert events_rounds < slot_rounds
    assert events_mean <= slot_mean * 1.10


def test_ud_exact_vs_approx(benchmark, scale):
    scenarios = [
        ScenarioGenerator(33).scenario(10, 5, 8, i) for i in range(2 * scale)
    ]

    def run():
        means = {}
        for name in ("ud", "ud-exact"):
            means[name], _ = _mean_makespan(
                scenarios, 2, name, SimulatorOptions()
            )
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nUD P_UD form -> mean makespan: {means}")
    # The paper's approximation should cost little against the exact form.
    assert means["ud"] <= means["ud-exact"] * 1.15


def test_contention_factor_on_heavy_comm(benchmark, scale):
    generator = ScenarioGenerator(34)
    scenarios = generator.contention_prone(10, 2 * scale)

    def run():
        means = {}
        for name in ("mct", "mct*"):
            means[name], _ = _mean_makespan(
                scenarios, 2, name, SimulatorOptions()
            )
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncontention factor (comm ×10) -> mean makespan: {means}")
    assert means["mct*"] <= means["mct"]


def test_heap_placement_speed(benchmark):
    # Micro-benchmark of the lazy-heap placement loop itself.
    from repro.core.heuristics.base import ProcessorView, SchedulingContext
    from repro.core.markov import paper_random_model
    from repro.types import ProcState

    rng = np.random.default_rng(0)
    views = [
        ProcessorView(
            index=q,
            speed_w=int(rng.integers(1, 10)),
            state=ProcState.UP,
            belief=paper_random_model(rng),
            has_program=False,
            delay=int(rng.integers(0, 20)),
            pinned_count=int(rng.integers(0, 2)),
        )
        for q in range(20)
    ]
    ctx = SchedulingContext(
        slot=0, t_prog=5, t_data=1, ncom=5, processors=views,
        remaining_tasks=40, rng=np.random.default_rng(0),
    )
    scheduler = make_scheduler("emct*")

    placements = benchmark(lambda: scheduler.place(ctx, 40))
    assert len(placements) == 40
    assert all(p is not None for p in placements)
