"""Benchmarks for the simulator core: runs/second across workload shapes.

These are throughput measurements for the substrate every experiment rests
on; regressions here multiply directly into campaign wall-clock.
"""

import pytest

from repro.experiments.harness import run_instance
from repro.workload.scenarios import ScenarioGenerator


@pytest.mark.parametrize(
    "n,ncom,wmin",
    [(5, 5, 1), (20, 5, 5), (40, 20, 10)],
    ids=["small", "medium", "large"],
)
def test_single_run(benchmark, n, ncom, wmin):
    scenario = ScenarioGenerator(1).scenario(n, ncom, wmin, 0)

    def run():
        return run_instance(scenario, 0, "emct*")

    makespan = benchmark.pedantic(run, rounds=3, iterations=1)
    assert makespan > 0


def test_trace_sampling_throughput(benchmark):
    import numpy as np

    from repro.core.markov import paper_random_model

    model = paper_random_model(np.random.default_rng(0))

    def run():
        return model.sample_trace(50_000, np.random.default_rng(1), initial=0)

    trace = benchmark(run)
    assert len(trace) == 50_000


def test_des_kernel_event_throughput(benchmark):
    from repro.sim.engine import Environment

    def run():
        env = Environment()

        def ping_pong(n):
            for _ in range(n):
                yield env.timeout(1.0)

        env.process(ping_pong(5000))
        env.run()
        return env.now

    now = benchmark(run)
    assert now == 5000.0
