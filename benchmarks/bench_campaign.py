"""Campaign backend throughput benchmark (exp. id ``bench-campaign``).

Measures serial vs. parallel execution-backend throughput (simulation
runs per second) on a reduced Table 2 sweep — including loopback
``distributed`` cells that record coordinator overhead per unit,
parallel efficiency and the fault counters (re-issues, duplicates
dropped) — and emits a JSON document so successive PRs accumulate a
perf trajectory::

    PYTHONPATH=src python benchmarks/bench_campaign.py --jobs 4 --out bench.json

The campaign statistics are asserted bit-identical across the measured
backends (the backend acceptance bar) before any number is reported —
a speedup that changed the science would be worthless.

Wall-clock speedups require physical cores: on a single-CPU container
the parallel rows measure pure backend overhead (expect ≤ 1×), which is
itself worth tracking.  ``cpu_count`` is recorded in the document so a
reader can tell the two regimes apart.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.table2 import run_table2

# The reduced Table 2 sweep (mirrors bench_table2's grid slice): all
# communication regimes of the x-axis at two task counts.
REDUCED = dict(n_values=(5, 20), ncom_values=(5,), wmin_values=(1, 5, 10))


def _measure(
    *,
    backend,
    jobs: Optional[int],
    scenarios_per_cell: int,
    trials: int,
    heuristics: Sequence[str],
    seed: int,
    engine: str = "per-run",
) -> Dict:
    # ``backend`` may be a registry name or a pre-built instance (the
    # distributed cells need instances to read coordinator stats back).
    is_instance = not isinstance(backend, str)
    start = time.perf_counter()
    result = run_table2(
        scenarios_per_cell=scenarios_per_cell,
        trials=trials,
        heuristics=tuple(heuristics),
        seed=seed,
        backend=backend,
        jobs=None if is_instance else jobs,
        engine=engine,
        **REDUCED,
    )
    elapsed = time.perf_counter() - start
    runs = result.campaign.instances * len(heuristics)
    return {
        "backend": getattr(backend, "name", backend),
        "jobs": jobs or 1,
        "engine": engine,
        "seconds": round(elapsed, 4),
        "instances": result.campaign.instances,
        "runs": runs,
        "runs_per_sec": round(runs / elapsed, 3),
        "_campaign": result.campaign,
    }


def run_benchmark(
    *,
    jobs: int = 4,
    scenarios_per_cell: int = 1,
    trials: int = 2,
    heuristics: Sequence[str] = ("mct", "mct*", "emct", "emct*"),
    seed: int = 12061,
) -> Dict:
    """Time the reduced sweep under serial and process backends.

    Returns the JSON-ready document (measurements + provenance); the
    parallel rows cover ``jobs`` workers and, for scaling shape, half of
    ``jobs`` when that is a distinct count.
    """
    from repro.experiments.distributed import (
        DistributedBackend,
        FaultPlan,
        FaultyWorker,
    )

    configurations = [("serial", None, "per-run"), ("serial", None, "batch")]
    if jobs >= 2 and jobs // 2 not in (1, jobs):
        configurations.append(("process", jobs // 2, "per-run"))
    configurations.append(("process", jobs, "per-run"))
    # Distributed cells (loopback coordinator/worker service, DESIGN.md
    # §13): a single-worker cell isolates coordinator overhead per unit,
    # the ``jobs``-worker cell feeds the scaling/parallel-efficiency
    # table, and a duplicate-delivery cell measures the dedupe path's
    # cost while recording the fault counters.
    fleet_jobs = max(2, jobs)  # the fleet cell always exercises concurrency
    dist_single = DistributedBackend(1)
    dist_fleet = DistributedBackend(fleet_jobs)
    dist_faulty = DistributedBackend(
        max(2, min(jobs, 4)),
        worker_factory=lambda address, slot: FaultyWorker(
            address,
            plan=FaultPlan(duplicate_results=True),
            worker_id=f"bench-dup-{slot}",
        ),
    )
    configurations += [
        (dist_single, 1, "per-run"),
        (dist_fleet, fleet_jobs, "per-run"),
        (dist_faulty, dist_faulty.jobs, "per-run"),
    ]

    rows: List[Dict] = []
    for backend, worker_count, engine in configurations:
        rows.append(
            _measure(
                backend=backend,
                jobs=worker_count,
                scenarios_per_cell=scenarios_per_cell,
                trials=trials,
                heuristics=heuristics,
                seed=seed,
                engine=engine,
            )
        )
    rows[-1]["backend"] = "distributed-faulty"

    reference = rows[0].pop("_campaign")
    for row in rows[1:]:
        campaign = row.pop("_campaign")
        if not (
            campaign.records == reference.records
            and campaign.accumulator == reference.accumulator
        ):  # pragma: no cover - would be a backend/engine bug
            raise AssertionError(
                f"{row['backend']}(jobs={row['jobs']}, "
                f"engine={row['engine']}) diverged from serial per-run"
            )

    serial_rate = rows[0]["runs_per_sec"]
    cpu_count = os.cpu_count() or 1
    # Batch-engine row: same serial backend, cohort execution.  Its
    # speedup is an apples-to-apples engine comparison (identical
    # statistics asserted above); it composes multiplicatively with the
    # process-backend scaling rows below.
    batch_rows = [row for row in rows if row["engine"] == "batch"]
    batch_speedup = (
        round(batch_rows[0]["runs_per_sec"] / serial_rate, 3)
        if batch_rows
        else None
    )
    # cpu_count-aware per-job scaling: a parallel row can at best run
    # min(jobs, physical cores) units concurrently, so its *parallel
    # efficiency* is speedup / that bound.  On a single-CPU container the
    # bound is 1 and the rows measure pure backend overhead (efficiency ~=
    # speedup); on a multi-core runner the same document shows the real
    # scaling shape with no code changes (ROADMAP open item).
    scaling = {}
    for row in rows[1:]:
        if row["engine"] != "per-run":
            continue  # engine comparison reported separately
        speedup = round(row["runs_per_sec"] / serial_rate, 3)
        bound = min(row["jobs"], cpu_count)
        scaling[f"{row['backend']}-{row['jobs']}"] = {
            "speedup_vs_serial": speedup,
            "ideal_speedup": bound,
            "parallel_efficiency": round(speedup / bound, 3),
        }
    # Coordinator overhead per unit: the single-worker distributed cell
    # does exactly the serial cell's work plus the whole service stack
    # (sockets, leases, heartbeats, journal-less bookkeeping), so the
    # per-unit wall-clock difference *is* the service overhead.
    serial_row = rows[0]
    single_row = next(
        r for r in rows if r["backend"] == "distributed" and r["jobs"] == 1
    )
    fleet_row = next(
        r
        for r in rows
        if r["backend"] == "distributed" and r["jobs"] == fleet_jobs
    )
    faulty_row = next(r for r in rows if r["backend"] == "distributed-faulty")

    def _counters(backend: DistributedBackend) -> Dict:
        stats = backend.last_stats
        return {
            "units_executed": stats.units_executed,
            "chunks_assigned": stats.chunks_assigned,
            "reissues": stats.reissues,
            "duplicates_dropped": stats.duplicates_dropped,
            "lease_expiries": stats.lease_expiries,
            "heartbeats": stats.heartbeats,
        }

    distributed = {
        "coordinator_overhead_ms_per_unit": round(
            1000.0
            * (single_row["seconds"] - serial_row["seconds"])
            / single_row["instances"],
            3,
        ),
        "single": _counters(dist_single),
        "fleet": {
            "jobs": fleet_jobs,
            "parallel_efficiency": scaling[f"distributed-{fleet_jobs}"][
                "parallel_efficiency"
            ],
            **_counters(dist_fleet),
        },
        "faulty_duplicates": {
            "jobs": dist_faulty.jobs,
            "slowdown_vs_clean_fleet": round(
                faulty_row["seconds"] / fleet_row["seconds"], 3
            ),
            **_counters(dist_faulty),
        },
    }
    return {
        "benchmark": "campaign-backends",
        "unix_time": int(time.time()),
        "cpu_count": cpu_count,
        "config": {
            "scenarios_per_cell": scenarios_per_cell,
            "trials": trials,
            "heuristics": list(heuristics),
            "seed": seed,
            **{k: list(v) for k, v in REDUCED.items()},
        },
        "results": rows,
        "speedup_vs_serial": {
            key: value["speedup_vs_serial"] for key, value in scaling.items()
        },
        "scaling": scaling,
        "batch_speedup": batch_speedup,
        "distributed": distributed,
        "statistics_identical": True,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4, help="parallel workers")
    parser.add_argument(
        "--scenarios", type=int, default=1, help="scenarios per cell"
    )
    parser.add_argument("--trials", type=int, default=2, help="trials/scenario")
    parser.add_argument("--seed", type=int, default=12061)
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="write JSON here (else stdout)"
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help=(
            "append a one-line trajectory record here "
            "(default: BENCH_history.jsonl at the repo root; "
            "'-' disables)"
        ),
    )
    args = parser.parse_args(argv)

    document = run_benchmark(
        jobs=args.jobs,
        scenarios_per_cell=args.scenarios,
        trials=args.trials,
        seed=args.seed,
    )
    if args.history != "-":
        from bench_history import append_history

        distributed = document["distributed"]
        append_history(
            document["benchmark"],
            {
                "speedup_vs_serial": document["speedup_vs_serial"],
                "batch_speedup": document["batch_speedup"],
                "serial_runs_per_sec": document["results"][0]["runs_per_sec"],
                "coordinator_overhead_ms_per_unit": distributed[
                    "coordinator_overhead_ms_per_unit"
                ],
                "distributed_parallel_efficiency": distributed["fleet"][
                    "parallel_efficiency"
                ],
                "distributed_reissues": distributed["fleet"]["reissues"],
                "distributed_duplicates_dropped": distributed[
                    "faulty_duplicates"
                ]["duplicates_dropped"],
            },
            path=args.history,
        )
    text = json.dumps(document, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        summary = ", ".join(
            f"{row['backend']}-{row['jobs']}: {row['runs_per_sec']}/s"
            for row in document["results"]
        )
        print(f"wrote {args.out} ({summary})", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
